(* Tests for the observability layer (Spectr_obs).

   Two properties anchor this suite:

   - Determinism: with the tick-backed clock, two identical scenario
     runs produce identical counter snapshots and identical decision
     JSONL — the layer adds no nondeterminism of its own.

   - Byte-identity of the disabled path: with instrumentation off (the
     default), the instrumented pipeline produces CSVs byte-identical to
     the pinned pre-instrumentation digests, and enabling instrumentation
     never changes the trace itself. *)

open Spectr_platform
module Obs = Spectr_obs

module Scenario = Spectr.Scenario

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Every test leaves the layer disabled and empty so suites stay
   independent of execution order. *)
let with_obs f =
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.Clock.use_ticks ();
      Obs.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_ticks () =
  with_obs (fun () ->
      Obs.Clock.use_ticks ();
      Obs.Clock.reset ();
      check_bool "tick source" true (Obs.Clock.is_ticks ());
      check_bool "starts at zero" true (Obs.Clock.now_ns () = 0L);
      Obs.Clock.tick ();
      Obs.Clock.tick ();
      Obs.Clock.tick ();
      (* One tick is stamped as 1 ms. *)
      check_bool "3 ticks = 3 ms" true (Obs.Clock.now_ns () = 3_000_000L);
      let t = ref 0L in
      Obs.Clock.use_monotonic (fun () ->
          t := Int64.add !t 5L;
          !t);
      check_bool "monotonic source" false (Obs.Clock.is_ticks ());
      check_bool "monotonic advances" true (Obs.Clock.now_ns () = 5L);
      check_bool "monotonic advances again" true (Obs.Clock.now_ns () = 10L))

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let test_counters_basic () =
  with_obs (fun () ->
      let c = Obs.Counters.counter "test.basic" in
      check_string "name" "test.basic" (Obs.Counters.name c);
      (* Disabled: recording is a no-op. *)
      Obs.Counters.incr c;
      Obs.Counters.add c 10;
      check_int "disabled is a no-op" 0 (Obs.Counters.value c);
      Obs.enable ();
      Obs.Counters.incr c;
      Obs.Counters.add c 10;
      check_int "enabled counts" 11 (Obs.Counters.value c);
      check_bool "registered lookup" true
        (Obs.Counters.by_name "test.basic" = Some 11);
      check_bool "unknown lookup" true (Obs.Counters.by_name "test.no" = None);
      check_bool "same handle for same name" true
        (Obs.Counters.counter "test.basic" == c);
      check_bool "snapshot contains it" true
        (List.mem_assoc "test.basic" (Obs.Counters.snapshot ()));
      let g = Obs.Counters.gauge "test.level" in
      Obs.Counters.set g 2.5;
      check_bool "gauge" true (Obs.Counters.gauge_value g = 2.5);
      Obs.reset ();
      check_int "reset zeroes" 0 (Obs.Counters.value c);
      check_bool "registration survives reset" true
        (Obs.Counters.by_name "test.basic" = Some 0))

let test_counters_cross_domain () =
  with_obs (fun () ->
      Obs.enable ();
      let c = Obs.Counters.counter "test.sharded" in
      let ds =
        List.init 3 (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to 1000 do
                  Obs.Counters.incr c
                done))
      in
      for _ = 1 to 1000 do
        Obs.Counters.incr c
      done;
      List.iter Domain.join ds;
      check_int "shards merge on read" 4000 (Obs.Counters.value c))

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram () =
  with_obs (fun () ->
      let h = Obs.Histogram.histogram "test.lat" in
      Obs.Histogram.observe h 100;
      check_int "disabled is a no-op" 0 (Obs.Histogram.count h);
      Obs.enable ();
      Obs.Histogram.observe h 100;
      Obs.Histogram.observe h 200;
      Obs.Histogram.observe h 3000;
      check_int "count" 3 (Obs.Histogram.count h);
      check_int "max is exact" 3000 (Obs.Histogram.max_ns h);
      check_bool "mean" true (Obs.Histogram.mean_ns h = 1100.);
      (* Percentiles are bucket upper bounds (within 2x), clamped by the
         exact max. *)
      let p50 = Obs.Histogram.percentile h 50. in
      check_bool "p50 covers the median sample" true (p50 >= 200 && p50 < 400);
      check_int "p100 is the max" 3000 (Obs.Histogram.percentile h 100.);
      check_bool "p99 clamped by max" true
        (Obs.Histogram.percentile h 99. <= 3000);
      check_int "empty percentile" 0
        (Obs.Histogram.percentile (Obs.Histogram.histogram "test.empty") 50.);
      Alcotest.check_raises "quantile range"
        (Invalid_argument "Histogram.percentile") (fun () ->
          ignore (Obs.Histogram.percentile h 101.));
      Obs.reset ();
      check_int "reset zeroes" 0 (Obs.Histogram.count h))

let test_histogram_negative_rejected () =
  with_obs (fun () ->
      Obs.enable ();
      let h = Obs.Histogram.histogram "test.neg" in
      Obs.Histogram.observe h 100;
      Obs.Histogram.observe h (-5);
      Obs.Histogram.observe h (-1);
      (* Regression: a negative sample used to bump [count] without
         touching any bucket, skewing mean and percentiles forever
         after.  Rejection must be consistent: neither count, sum,
         buckets nor max move — only the dropped tally. *)
      check_int "count holds" 1 (Obs.Histogram.count h);
      check_bool "mean is the mean of recorded samples" true
        (Obs.Histogram.mean_ns h = 100.);
      check_int "max untouched" 100 (Obs.Histogram.max_ns h);
      check_int "dropped tally" 2 (Obs.Histogram.dropped h);
      (* Zero is a valid sample (bucket 0), not a rejection. *)
      Obs.Histogram.observe h 0;
      check_int "zero recorded" 2 (Obs.Histogram.count h);
      check_int "zero not dropped" 2 (Obs.Histogram.dropped h);
      Obs.reset ();
      check_int "reset clears dropped" 0 (Obs.Histogram.dropped h))

let test_histogram_percentile_edges () =
  with_obs (fun () ->
      Obs.enable ();
      (* Single sample: every percentile is that sample (p0 included —
         the rank clamps to the first recorded sample, and the exact max
         clamps the bucket bound back down). *)
      let h1 = Obs.Histogram.histogram "test.p.single" in
      Obs.Histogram.observe h1 700;
      check_int "single-sample p0" 700 (Obs.Histogram.percentile h1 0.);
      check_int "single-sample p50" 700 (Obs.Histogram.percentile h1 50.);
      check_int "single-sample p100" 700 (Obs.Histogram.percentile h1 100.);
      (* All-zero samples land in bucket 0 with upper bound 0. *)
      let h0 = Obs.Histogram.histogram "test.p.zero" in
      Obs.Histogram.observe h0 0;
      Obs.Histogram.observe h0 0;
      Obs.Histogram.observe h0 0;
      check_int "all-zero p0" 0 (Obs.Histogram.percentile h0 0.);
      check_int "all-zero p50" 0 (Obs.Histogram.percentile h0 50.);
      check_int "all-zero p100" 0 (Obs.Histogram.percentile h0 100.);
      (* p0 of a multi-bucket distribution covers the smallest sample;
         p100 is exactly the max regardless of bucket width. *)
      let h = Obs.Histogram.histogram "test.p.edges" in
      Obs.Histogram.observe h 10;
      Obs.Histogram.observe h 5000;
      check_bool "p0 covers the smallest sample" true
        (Obs.Histogram.percentile h 0. >= 10
        && Obs.Histogram.percentile h 0. < 5000);
      check_int "p100 is the exact max" 5000 (Obs.Histogram.percentile h 100.);
      Alcotest.check_raises "negative percentile"
        (Invalid_argument "Histogram.percentile") (fun () ->
          ignore (Obs.Histogram.percentile h (-1.))))

let test_time_span () =
  with_obs (fun () ->
      Obs.enable ();
      (* Tick clock: a span during which the clock ticks twice measures
         exactly 2 ms. *)
      Obs.Clock.use_ticks ();
      let h = Obs.Histogram.histogram "test.span" in
      let r =
        Obs.time h (fun () ->
            Obs.Clock.tick ();
            Obs.Clock.tick ();
            17)
      in
      check_int "result passes through" 17 r;
      check_int "one sample" 1 (Obs.Histogram.count h);
      check_int "span is 2 ticks" 2_000_000 (Obs.Histogram.max_ns h);
      (* Exceptions propagate. *)
      Alcotest.check_raises "exception passes through" (Failure "span")
        (fun () -> Obs.time h (fun () -> failwith "span")))

(* ------------------------------------------------------------------ *)
(* Decision log                                                        *)
(* ------------------------------------------------------------------ *)

let test_decision_ring () =
  with_obs (fun () ->
      Obs.enable ();
      Obs.Decision_log.set_capacity 4;
      for i = 0 to 5 do
        Obs.Decision_log.record
          (Obs.Decision_log.Rebudget
             { target = "big_power_ref"; value = float_of_int i })
      done;
      check_int "total counts every record" 6 (Obs.Decision_log.total ());
      check_int "ring retains capacity" 4 (Obs.Decision_log.length ());
      check_int "dropped counts overwrites" 2 (Obs.Decision_log.dropped ());
      (match Obs.Decision_log.entries () with
      | { Obs.Decision_log.seq = s0; _ } :: _ as es ->
          check_int "oldest retained seq" 2 s0;
          check_int "newest retained seq" 5
            (List.nth es 3).Obs.Decision_log.seq
      | [] -> Alcotest.fail "entries empty");
      check_bool "kind tally" true
        (Obs.Decision_log.kind_counts () = [ ("rebudget", 4) ]);
      Alcotest.check_raises "capacity >= 1"
        (Invalid_argument "Decision_log.set_capacity: n < 1") (fun () ->
          Obs.Decision_log.set_capacity 0))

let test_decision_jsonl_shape () =
  with_obs (fun () ->
      Obs.enable ();
      Obs.Clock.use_ticks ();
      Obs.Clock.reset ();
      Obs.Decision_log.record
        (Obs.Decision_log.Event_fired
           { event = "increaseBigPower"; controllable = true });
      Obs.Clock.tick ();
      Obs.Decision_log.record (Obs.Decision_log.Gain_switch { mode = "power" });
      Obs.Decision_log.record
        (Obs.Decision_log.Guard_fallback { entered = true });
      Obs.Decision_log.record (Obs.Decision_log.Fault { active = 2; onset = true });
      let jsonl = Obs.Decision_log.to_jsonl () in
      let lines = String.split_on_char '\n' jsonl in
      (* Trailing newline: last split element is empty. *)
      check_int "one line per decision" 5 (List.length lines);
      check_string "last element empty (trailing newline)" ""
        (List.nth lines 4);
      check_string "event line"
        "{\"seq\":0,\"t_ns\":0,\"kind\":\"event_fired\",\"event\":\"increaseBigPower\",\"controllable\":true}"
        (List.nth lines 0);
      check_string "gain-switch line stamped after one tick"
        "{\"seq\":1,\"t_ns\":1000000,\"kind\":\"gain_switch\",\"mode\":\"power\"}"
        (List.nth lines 1);
      check_string "guard line"
        "{\"seq\":2,\"t_ns\":1000000,\"kind\":\"guard_fallback\",\"entered\":true}"
        (List.nth lines 2);
      check_string "fault line"
        "{\"seq\":3,\"t_ns\":1000000,\"kind\":\"fault\",\"active\":2,\"onset\":true}"
        (List.nth lines 3))

(* JSONL escaping, pinned byte-for-byte: a hostile event name (quotes,
   backslashes, newline, a control byte) must come out as exactly one
   valid JSON line.  An unescaped quote would silently truncate every
   downstream jq pipeline, so the expected string is spelled out in
   full. *)
let test_decision_jsonl_escaping () =
  with_obs (fun () ->
      Obs.enable ();
      Obs.Clock.use_ticks ();
      Obs.Clock.reset ();
      Obs.Decision_log.record
        (Obs.Decision_log.Event_fired
           { event = "a\"b\\c\nd\te\x01f"; controllable = false });
      let jsonl = Obs.Decision_log.to_jsonl () in
      (match String.split_on_char '\n' jsonl with
      | [ line; "" ] ->
          check_string "escaped event line"
            "{\"seq\":0,\"t_ns\":0,\"kind\":\"event_fired\",\"event\":\"a\\\"b\\\\c\\nd\\u0009e\\u0001f\",\"controllable\":false}"
            line
      | lines ->
          Alcotest.failf "expected exactly one line, got %d"
            (List.length lines - 1));
      Obs.Decision_log.record
        (Obs.Decision_log.Gain_switch { mode = "qos\"}{\"" });
      match String.split_on_char '\n' (Obs.Decision_log.to_jsonl ()) with
      | [ _; line; "" ] ->
          check_string "escaped mode line"
            "{\"seq\":1,\"t_ns\":0,\"kind\":\"gain_switch\",\"mode\":\"qos\\\"}{\\\"\"}"
            line
      | lines ->
          Alcotest.failf "expected exactly two lines, got %d"
            (List.length lines - 1))

let test_disabled_record_free () =
  with_obs (fun () ->
      (* Disabled: the log accepts nothing. *)
      Obs.Decision_log.record (Obs.Decision_log.Gain_switch { mode = "qos" });
      check_int "no entries while disabled" 0 (Obs.Decision_log.total ()))

(* ------------------------------------------------------------------ *)
(* End-to-end: determinism and disabled-path byte-identity             *)
(* ------------------------------------------------------------------ *)

let short_config () =
  let cfg = Scenario.default_config Benchmarks.x264 in
  {
    cfg with
    Scenario.phases =
      List.map
        (fun ph -> { ph with Scenario.duration_s = 1.0 })
        cfg.Scenario.phases;
  }

let run_scenario_instrumented () =
  Obs.reset ();
  let manager = fst (Spectr.Spectr_manager.make ()) in
  let trace = Scenario.run ~manager (short_config ()) in
  ( Trace.to_csv trace,
    Obs.Counters.snapshot (),
    Obs.Decision_log.to_jsonl (),
    Obs.summary () )

let test_determinism () =
  with_obs (fun () ->
      (* Warm the synthesis and identification caches while still
         disabled so both instrumented runs see the same hit/miss
         sequence (and the same SoC tick counts — the identification
         experiment steps a private SoC on a cache miss). *)
      ignore (Spectr.Supervisor.synthesize ());
      ignore (Spectr.Spectr_manager.make ());
      Obs.Clock.use_ticks ();
      Obs.enable ();
      let csv1, counters1, jsonl1, summary1 = run_scenario_instrumented () in
      let csv2, counters2, jsonl2, summary2 = run_scenario_instrumented () in
      check_bool "traces identical" true (csv1 = csv2);
      check_bool "counter snapshots identical" true (counters1 = counters2);
      check_string "decision JSONL identical"
        (Digest.to_hex (Digest.string jsonl1))
        (Digest.to_hex (Digest.string jsonl2));
      check_string "summaries identical"
        (Digest.to_hex (Digest.string summary1))
        (Digest.to_hex (Digest.string summary2));
      (* The run actually exercised the instrumented paths. *)
      let nonzero name =
        match List.assoc_opt name counters1 with
        | Some v -> v > 0
        | None -> false
      in
      List.iter
        (fun name ->
          check_bool (name ^ " nonzero") true (nonzero name))
        [
          "soc.steps";
          "manager.steps";
          "manager.actuations";
          "supervisor.steps";
          "supervisor.events_fired";
          "supervisor.events_observed";
        ];
      (* Two cluster actuations per manager step. *)
      check_int "actuations = 2 * manager steps"
        (2 * List.assoc "manager.steps" counters1)
        (List.assoc "manager.actuations" counters1);
      check_bool "decisions were logged" true
        (String.length jsonl1 > 0))

(* Digests pinned before the observability layer existed: the
   instrumented pipeline, with instrumentation disabled (and even
   enabled), must still produce them byte-for-byte.  Guards the
   "disabled path is free and invisible" contract. *)
let pinned_spectr_csv = "ab3b5b5ef6ec4920c18d5f0a4117cbc1"
let pinned_mm_pow_csv = "96be8102f7bac038240ca64962ed878b"

let full_run manager =
  let config =
    { (Scenario.default_config Benchmarks.x264) with seed = Int64.of_int 42 }
  in
  Trace.to_csv (Scenario.run ~manager config)

let test_disabled_byte_identity () =
  with_obs (fun () ->
      check_bool "layer is disabled" false (Obs.enabled ());
      let csv_off = full_run (fst (Spectr.Spectr_manager.make ())) in
      check_string "SPECTR CSV matches pre-instrumentation pin"
        pinned_spectr_csv
        (Digest.to_hex (Digest.string csv_off));
      check_string "MM-Pow CSV matches pre-instrumentation pin"
        pinned_mm_pow_csv
        (Digest.to_hex (Digest.string (full_run (Spectr.Mm.make_pow ()))));
      (* Enabling instrumentation observes without perturbing: same
         bytes with the layer on. *)
      Obs.Clock.use_ticks ();
      Obs.enable ();
      let csv_on = full_run (fst (Spectr.Spectr_manager.make ())) in
      check_bool "obs-on trace == obs-off trace" true (csv_on = csv_off))

let () =
  Alcotest.run "spectr_obs"
    [
      ("clock", [ Alcotest.test_case "tick and monotonic sources" `Quick test_clock_ticks ]);
      ( "counters",
        [
          Alcotest.test_case "registry, enable gating, reset" `Quick
            test_counters_basic;
          Alcotest.test_case "cross-domain sharding" `Quick
            test_counters_cross_domain;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "buckets, percentiles, max" `Quick test_histogram;
          Alcotest.test_case "negative samples rejected" `Quick
            test_histogram_negative_rejected;
          Alcotest.test_case "percentile edge ranks" `Quick
            test_histogram_percentile_edges;
          Alcotest.test_case "timed spans" `Quick test_time_span;
        ] );
      ( "decision-log",
        [
          Alcotest.test_case "bounded ring" `Quick test_decision_ring;
          Alcotest.test_case "JSONL shape" `Quick test_decision_jsonl_shape;
          Alcotest.test_case "JSONL escaping (pinned)" `Quick
            test_decision_jsonl_escaping;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_record_free;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "two instrumented runs identical" `Slow
            test_determinism;
          Alcotest.test_case "disabled path byte-identical (pinned)" `Slow
            test_disabled_byte_identity;
        ] );
    ]
