(* Tests for the Exynos-class HMP simulator: Opp, Workload, Benchmarks,
   Perf_model, Power_model, Soc, Heartbeats, Trace.

   Several tests pin the calibration targets taken from the paper:
   max-vs-min allocation speedups between 3.2x and 4.5x for the PARSEC
   set, x264 ceiling near 80 FPS, chip power within the 1.5-6 W band of
   Figure 13. *)

open Spectr_platform

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Opp                                                                 *)
(* ------------------------------------------------------------------ *)

let test_opp_tables () =
  check_int "big min" 200 (Opp.min_freq Opp.big);
  check_int "big max" 2000 (Opp.max_freq Opp.big);
  check_int "little max" 1400 (Opp.max_freq Opp.little);
  check_int "big points" 19 (Opp.num_points Opp.big);
  check_int "little points" 13 (Opp.num_points Opp.little)

let test_opp_nearest () =
  check_int "round down" 1200 (Opp.nearest Opp.big 1240.);
  check_int "round up" 1300 (Opp.nearest Opp.big 1260.);
  check_int "clamp low" 200 (Opp.nearest Opp.big (-50.));
  check_int "clamp high" 2000 (Opp.nearest Opp.big 9999.)

(* The O(n) scan behind [nearest] on unevenly spaced tables: midpoint
   ties resolve downward, single-entry tables absorb everything, and
   out-of-range queries clamp — and on a uniform table the scan and the
   O(1) fast path must agree at every query. *)
let test_opp_nearest_scan () =
  let bumpy =
    Opp.create ~name:"bumpy"
      ~points:[ (200, 0.9); (600, 0.95); (700, 1.0); (1500, 1.1) ]
  in
  check_int "non-uniform detected" 0 bumpy.Opp.uniform_step_mhz;
  check_int "midpoint tie resolves down" 200 (Opp.nearest bumpy 400.);
  check_int "midpoint tie resolves down (narrow)" 600 (Opp.nearest bumpy 650.);
  check_int "just above midpoint" 600 (Opp.nearest bumpy 401.);
  check_int "just below midpoint" 200 (Opp.nearest bumpy 399.);
  check_int "wide gap rounds up" 1500 (Opp.nearest bumpy 1101.);
  check_int "clamp low" 200 (Opp.nearest bumpy (-300.));
  check_int "clamp high" 1500 (Opp.nearest bumpy 1.e7);
  check_int "scan agrees" (Opp.nearest_scan bumpy 650.) (Opp.nearest bumpy 650.);
  let single = Opp.create ~name:"single" ~points:[ (800, 1.0) ] in
  check_int "single below" 800 (Opp.nearest single 0.);
  check_int "single above" 800 (Opp.nearest single 5000.);
  check_int "single exact" 800 (Opp.nearest single 800.);
  check_int "single scan" 800 (Opp.nearest_scan single 123.);
  (* Every half-step query on the uniform Big table: scan = fast path. *)
  for f10 = 0 to 250 do
    let f = float_of_int f10 *. 10. -. 100. in
    check_int
      (Printf.sprintf "scan/fast agree at %.0f" f)
      (Opp.nearest_scan Opp.big f) (Opp.nearest Opp.big f)
  done

let test_opp_voltage_monotone () =
  let prev = ref 0. in
  Array.iter
    (fun f ->
      let v = Opp.voltage Opp.big f in
      check_bool "voltage ascends" true (v > !prev);
      prev := v)
    (Array.of_list
       (List.init (Opp.num_points Opp.big) (fun i -> 200 + (i * 100))))

let test_opp_voltage_unknown () =
  Alcotest.check_raises "not an OPP"
    (Invalid_argument "Opp.index: 1250 MHz not an OPP of big-a15") (fun () ->
      ignore (Opp.voltage Opp.big 1250))

let test_opp_create_validation () =
  Alcotest.check_raises "descending"
    (Invalid_argument "Opp.create: frequencies must ascend") (fun () ->
      ignore (Opp.create ~name:"bad" ~points:[ (500, 1.0); (400, 0.9) ]))

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let test_workload_validation () =
  Alcotest.check_raises "parallel fraction"
    (Invalid_argument "Workload.create: parallel_fraction not in [0,1]")
    (fun () ->
      ignore
        (Workload.create ~name:"w" ~parallel_fraction:1.5 ~freq_scaling:2.
           ~base_ipc_big:1. ~instructions_per_heartbeat:1e7 ()))

let test_workload_phases () =
  let w = Benchmarks.canneal in
  let early = Workload.phase_at w 5. in
  let late = Workload.phase_at w 100. in
  check_bool "serial phase first" true
    (early.Workload.parallel_fraction < 0.5);
  check_bool "parallel later" true (late.Workload.parallel_fraction >= 0.5)

let test_workload_phase_default () =
  let w = Benchmarks.x264 in
  let ph = Workload.phase_at w 42. in
  check_float "default p" w.Workload.parallel_fraction
    ph.Workload.parallel_fraction;
  check_float "default demand" 1. ph.Workload.demand_scale

let test_amdahl () =
  check_float "p=1 linear" 4.
    (Workload.amdahl_speedup ~parallel_fraction:1. ~cores:4.);
  check_float "p=0 flat" 1.
    (Workload.amdahl_speedup ~parallel_fraction:0. ~cores:4.);
  check_bool "fractional cores" true
    (Workload.amdahl_speedup ~parallel_fraction:0.9 ~cores:2.5 > 1.);
  Alcotest.check_raises "zero cores"
    (Invalid_argument "Workload.amdahl_speedup: cores <= 0") (fun () ->
      ignore (Workload.amdahl_speedup ~parallel_fraction:0.5 ~cores:0.))

(* ------------------------------------------------------------------ *)
(* Benchmarks: paper calibration targets                               *)
(* ------------------------------------------------------------------ *)

let test_speedup_range_parsec () =
  (* §5: "Speedups from 3.2X (streamcluster) to 4.5X (x264)". *)
  let ratio w = Perf_model.max_qos_rate w /. Perf_model.min_qos_rate w in
  check_bool "streamcluster ~3.2x" true
    (abs_float (ratio Benchmarks.streamcluster -. 3.2) < 0.15);
  check_bool "x264 ~4.5x" true (abs_float (ratio Benchmarks.x264 -. 4.5) < 0.15);
  List.iter
    (fun w ->
      let r = ratio w in
      check_bool (w.Workload.name ^ " speedup sane") true (r > 2. && r < 7.))
    Benchmarks.all_qos

let test_x264_fps_ceiling () =
  let max_fps = Perf_model.max_qos_rate Benchmarks.x264 in
  check_bool "~80 FPS at full allocation" true
    (max_fps > 75. && max_fps < 85.)

let test_benchmark_lookup () =
  check_bool "x264 found" true (Benchmarks.by_name "x264" <> None);
  check_bool "microbench found" true (Benchmarks.by_name "microbench" <> None);
  check_bool "unknown" true (Benchmarks.by_name "doom" = None);
  check_int "eight QoS apps" 8 (List.length Benchmarks.all_qos)

(* ------------------------------------------------------------------ *)
(* Perf_model                                                          *)
(* ------------------------------------------------------------------ *)

let test_perf_monotone_in_frequency () =
  let w = Benchmarks.x264 in
  let prev = ref 0. in
  List.iter
    (fun f ->
      let ips = Perf_model.core_ips w Perf_model.Big ~freq_mhz:f in
      check_bool "IPS increases with f" true (ips > !prev);
      prev := ips)
    [ 200; 600; 1000; 1400; 2000 ]

let test_perf_memory_bound_saturates () =
  (* streamcluster (freq_scaling 1.5) must gain less from frequency than
     the microbenchmark (freq_scaling 2.8). *)
  let gain w =
    Perf_model.core_ips w Perf_model.Big ~freq_mhz:2000
    /. Perf_model.core_ips w Perf_model.Big ~freq_mhz:200
  in
  check_bool "memory-bound flatter" true
    (gain Benchmarks.streamcluster < gain Benchmarks.microbench)

let test_perf_little_slower () =
  let w = Benchmarks.x264 in
  let big = Perf_model.core_ips w Perf_model.Big ~freq_mhz:1000 in
  let little = Perf_model.core_ips w Perf_model.Little ~freq_mhz:1000 in
  check_bool "little < big at same f" true (little < big);
  (* The shared memory-stall term compresses the in-order/out-of-order gap
     at equal frequency, so the ratio sits well above little_ipc_ratio. *)
  check_bool "ratio sensible" true (little /. big > 0.3 && little /. big < 0.9)

let test_perf_freq_scaling_exact () =
  (* The CPI law must reproduce the declared freq_scaling exactly. *)
  List.iter
    (fun w ->
      let r =
        Perf_model.core_ips w Perf_model.Big ~freq_mhz:2000
        /. Perf_model.core_ips w Perf_model.Big ~freq_mhz:200
      in
      check_bool
        (w.Workload.name ^ " freq scaling")
        true
        (abs_float (r -. w.Workload.freq_scaling) < 1e-9))
    Benchmarks.all_qos

let test_perf_ipc_reference () =
  (* IPS at 1 GHz = base_ipc * 1e9. *)
  let w = Benchmarks.x264 in
  check_bool "IPC at 1GHz" true
    (abs_float
       ((Perf_model.core_ips w Perf_model.Big ~freq_mhz:1000 /. 1e9)
       -. w.Workload.base_ipc_big)
    < 1e-6)

(* ------------------------------------------------------------------ *)
(* Power_model                                                         *)
(* ------------------------------------------------------------------ *)

let test_power_full_tilt () =
  let p =
    Power_model.cluster_power Power_model.big_params ~table:Opp.big
      ~freq_mhz:2000 ~active_cores:4 ~total_cores:4 ~utilization:1.
  in
  (* Big cluster alone ~5.4 W at the top OPP. *)
  check_bool "big peak ~5.4W" true (p > 4.8 && p < 6.0)

let test_power_monotone () =
  let power f =
    Power_model.cluster_power Power_model.big_params ~table:Opp.big ~freq_mhz:f
      ~active_cores:4 ~total_cores:4 ~utilization:1.
  in
  check_bool "2GHz > 1GHz" true (power 2000 > power 1000);
  check_bool "1GHz > 200MHz" true (power 1000 > power 200)

let test_power_core_gating () =
  let power n =
    Power_model.cluster_power Power_model.big_params ~table:Opp.big
      ~freq_mhz:1500 ~active_cores:n ~total_cores:4 ~utilization:1.
  in
  check_bool "fewer cores less power" true (power 1 < power 4);
  check_bool "gating saves a lot" true (power 4 -. power 1 > 1.)

let test_power_utilization () =
  let power u =
    Power_model.cluster_power Power_model.big_params ~table:Opp.big
      ~freq_mhz:1500 ~active_cores:4 ~total_cores:4 ~utilization:u
  in
  check_bool "idle cheaper" true (power 0. < power 1.);
  Alcotest.check_raises "bad util"
    (Invalid_argument "Power_model.cluster_power: utilization out of range")
    (fun () -> ignore (power 1.5))

let test_power_little_cheap () =
  let big =
    Power_model.cluster_power Power_model.big_params ~table:Opp.big
      ~freq_mhz:1400 ~active_cores:4 ~total_cores:4 ~utilization:1.
  in
  let little =
    Power_model.cluster_power Power_model.little_params ~table:Opp.little
      ~freq_mhz:1400 ~active_cores:4 ~total_cores:4 ~utilization:1.
  in
  check_bool "little ~5x cheaper" true (little *. 3. < big)

(* ------------------------------------------------------------------ *)
(* Soc                                                                 *)
(* ------------------------------------------------------------------ *)

let fresh_soc ?config () = Soc.create ?config ~qos:Benchmarks.x264 ()

let test_soc_actuators () =
  let soc = fresh_soc () in
  let f = Soc.set_frequency soc 0 1234. in
  check_int "quantized" 1200 f;
  check_int "readback" 1200 (Soc.frequency soc 0);
  Soc.set_active_cores soc 0 0;
  check_int "clamped to 1" 1 (Soc.active_cores soc 0);
  Soc.set_active_cores soc 0 9;
  check_int "clamped to 4" 4 (Soc.active_cores soc 0)

let test_soc_idle_insertion () =
  let soc = fresh_soc () in
  Soc.set_idle_fraction soc ~core:0 2.0;
  check_float "clamped to 0.9" 0.9 (Soc.idle_fraction soc ~core:0);
  let rate_full = Soc.true_qos_rate soc in
  ignore rate_full;
  Alcotest.check_raises "bad core" (Invalid_argument "Soc.set_idle_fraction: core")
    (fun () -> Soc.set_idle_fraction soc ~core:8 0.1)

let test_soc_idle_reduces_qos () =
  let soc = fresh_soc () in
  let before = Soc.true_qos_rate soc in
  for i = 0 to 3 do
    Soc.set_idle_fraction soc ~core:i 0.5
  done;
  let after = Soc.true_qos_rate soc in
  (* idling also relieves memory contention, so the loss is sublinear *)
  check_bool "idling reduces throughput" true (after < before *. 0.85)

let test_soc_qos_responds_to_frequency () =
  let soc = fresh_soc () in
  ignore (Soc.set_frequency soc 0 400.);
  let slow = Soc.true_qos_rate soc in
  ignore (Soc.set_frequency soc 0 2000.);
  let fast = Soc.true_qos_rate soc in
  check_bool "faster clock more FPS" true (fast > slow *. 1.3)

let test_soc_qos_responds_to_cores () =
  let soc = fresh_soc () in
  Soc.set_active_cores soc 0 1;
  let one = Soc.true_qos_rate soc in
  Soc.set_active_cores soc 0 4;
  let four = Soc.true_qos_rate soc in
  check_bool "more cores more FPS" true (four > one *. 1.5)

let test_soc_background_interference () =
  let soc = fresh_soc () in
  ignore (Soc.set_frequency soc 0 2000.);
  ignore (Soc.set_frequency soc 1 1400.);
  let clean_rate = Soc.true_qos_rate soc in
  let clean_power = Soc.true_chip_power soc in
  Soc.set_background_tasks soc 16;
  let dirty_rate = Soc.true_qos_rate soc in
  let dirty_power = Soc.true_chip_power soc in
  check_bool "background steals QoS" true (dirty_rate < clean_rate);
  check_bool "background burns power" true (dirty_power > clean_power);
  (* Paper Phase 3: with heavy background (the scenario uses 16 tasks)
     the 60 FPS reference must be unachievable even at full allocation. *)
  check_bool "60 FPS infeasible under disturbance" true (dirty_rate < 60.)

let test_soc_background_little_first () =
  let soc = fresh_soc () in
  (* 2 tasks * 0.6 util fit entirely on the Little cluster. *)
  let before = Soc.true_qos_rate soc in
  Soc.set_background_tasks soc 2;
  let after = Soc.true_qos_rate soc in
  check_bool "small background absorbed by little" true
    (abs_float (before -. after) < 1e-6)

let test_soc_power_range () =
  let soc = fresh_soc () in
  ignore (Soc.set_frequency soc 0 2000.);
  ignore (Soc.set_frequency soc 1 1400.);
  Soc.set_background_tasks soc 10;
  let peak = Soc.true_chip_power soc in
  ignore (Soc.set_frequency soc 0 200.);
  ignore (Soc.set_frequency soc 1 200.);
  Soc.set_background_tasks soc 0;
  Soc.set_active_cores soc 0 1;
  Soc.set_active_cores soc 1 1;
  let trough = Soc.true_chip_power soc in
  check_bool "peak < 7W" true (peak < 7.);
  check_bool "peak > 5W (TDP can bind)" true (peak > 5.);
  check_bool "trough < 1W" true (trough < 1.)

let test_soc_step_and_noise () =
  let soc = fresh_soc () in
  let obs1 = Soc.step soc ~dt:0.05 in
  let obs2 = Soc.step soc ~dt:0.05 in
  check_bool "time advances" true (obs2.Soc.time > obs1.Soc.time);
  check_bool "noise differs" true (obs1.Soc.chip_power <> obs2.Soc.chip_power);
  check_bool "noise small" true
    (abs_float (obs1.Soc.chip_power -. Soc.true_chip_power soc)
    /. Soc.true_chip_power soc
    < 0.2);
  check_int "8 cores" 8 (Array.length (Soc.per_core_ips soc));
  Alcotest.check_raises "bad dt" (Invalid_argument "Soc.step: dt <= 0")
    (fun () -> ignore (Soc.step soc ~dt:0.))

let test_soc_deterministic () =
  let run () =
    let soc = fresh_soc () in
    let acc = ref 0. in
    for _ = 1 to 20 do
      acc := !acc +. (Soc.step soc ~dt:0.05).Soc.chip_power
    done;
    !acc
  in
  check_float "same seed same trace" (run ()) (run ())

let test_soc_per_core_ips_idle_sensitive () =
  let soc = fresh_soc () in
  ignore (Soc.step soc ~dt:0.05);
  let base = (Soc.per_core_ips soc).(0) in
  Soc.set_idle_fraction soc ~core:0 0.8;
  ignore (Soc.step soc ~dt:0.05);
  let after = Soc.per_core_ips soc in
  check_bool "idled core reads lower IPS" true (after.(0) < base);
  check_bool "other core picks up share" true (after.(1) > 0.)

let test_soc_canneal_serial_phase () =
  (* During canneal's serialized phase, adding cores barely helps. *)
  let soc = Soc.create ~qos:Benchmarks.canneal () in
  Soc.set_active_cores soc 0 1;
  let one = Soc.true_qos_rate soc in
  Soc.set_active_cores soc 0 4;
  let four = Soc.true_qos_rate soc in
  check_bool "core scaling < 1.4x in serial phase" true (four /. one < 1.4)

(* ------------------------------------------------------------------ *)
(* Thermal model                                                       *)
(* ------------------------------------------------------------------ *)

let test_thermal_starts_ambient () =
  let soc = fresh_soc () in
  check_float "starts at ambient" Soc.default_config.Soc.ambient_c
    (Soc.temperature soc)

let test_thermal_heats_under_load () =
  let soc = fresh_soc () in
  ignore (Soc.set_frequency soc 0 2000.);
  for _ = 1 to 200 do
    ignore (Soc.step soc ~dt:0.05)
  done;
  let t = Soc.temperature soc in
  (* steady state ~ ambient + R * P; ~5.5 W at full tilt -> ~72-75 C *)
  check_bool "hot under load" true (t > 60.);
  check_bool "bounded" true (t < 90.)

let test_thermal_cools_when_idle () =
  let soc = fresh_soc () in
  ignore (Soc.set_frequency soc 0 2000.);
  for _ = 1 to 200 do
    ignore (Soc.step soc ~dt:0.05)
  done;
  let hot = Soc.temperature soc in
  ignore (Soc.set_frequency soc 0 200.);
  Soc.set_active_cores soc 0 1;
  for _ = 1 to 200 do
    ignore (Soc.step soc ~dt:0.05)
  done;
  check_bool "cools down" true (Soc.temperature soc < hot -. 10.)

let test_thermal_time_constant () =
  (* After one time constant the gap to the steady state closes by
     roughly 63 %. *)
  let soc = fresh_soc () in
  ignore (Soc.set_frequency soc 0 2000.);
  let target =
    Soc.default_config.Soc.ambient_c
    +. (Soc.default_config.Soc.thermal_resistance *. Soc.true_chip_power soc)
  in
  let start = Soc.temperature soc in
  let tau = Soc.default_config.Soc.thermal_tau in
  let steps = int_of_float (tau /. 0.05) in
  for _ = 1 to steps do
    ignore (Soc.step soc ~dt:0.05)
  done;
  let progress = (Soc.temperature soc -. start) /. (target -. start) in
  (* power noise wiggles the target a little; accept a generous band *)
  check_bool "~63% progress after tau" true (progress > 0.5 && progress < 0.8)

let test_thermal_in_observation () =
  let soc = fresh_soc () in
  let obs = Soc.step soc ~dt:0.05 in
  check_bool "sensor near true value" true
    (abs_float (obs.Soc.temperature_c -. Soc.temperature soc)
    < 0.1 *. Soc.temperature soc)

(* ------------------------------------------------------------------ *)
(* Heartbeats                                                          *)
(* ------------------------------------------------------------------ *)

let test_heartbeats_rate () =
  let hb = Heartbeats.create ~window:1.0 ~reference:60. () in
  (* 30 beats over one second -> 30 HB/s *)
  for i = 1 to 10 do
    Heartbeats.beat hb ~now:(0.1 *. float_of_int i) ~count:3.
  done;
  check_float "rate" 30. (Heartbeats.rate hb ~now:1.0);
  check_float "total" 30. (Heartbeats.total hb)

let test_heartbeats_window_expiry () =
  let hb = Heartbeats.create ~window:0.5 ~reference:60. () in
  Heartbeats.beat hb ~now:0.1 ~count:10.;
  Heartbeats.beat hb ~now:1.0 ~count:5.;
  (* at t=1.2 only the second burst is inside the window *)
  check_float "old beats expired" 10. (Heartbeats.rate hb ~now:1.2)

let test_heartbeats_reference () =
  let hb = Heartbeats.create ~reference:60. () in
  check_float "initial" 60. (Heartbeats.reference hb);
  Heartbeats.set_reference hb 30.;
  check_float "updated" 30. (Heartbeats.reference hb);
  Alcotest.check_raises "bad ref"
    (Invalid_argument "Heartbeats.set_reference: reference <= 0") (fun () ->
      Heartbeats.set_reference hb 0.)

let test_heartbeats_time_monotone () =
  let hb = Heartbeats.create ~reference:1. () in
  Heartbeats.beat hb ~now:1.0 ~count:1.;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Heartbeats.beat: time went backwards") (fun () ->
      Heartbeats.beat hb ~now:0.5 ~count:1.)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_roundtrip () =
  let tr = Trace.create ~columns:[ "t"; "fps"; "power" ] () in
  Trace.add tr [| 0.; 60.; 4. |];
  Trace.add tr [| 0.05; 62.; 4.1 |];
  check_int "length" 2 (Trace.length tr);
  let fps = Trace.column tr "fps" in
  check_float "first" 60. fps.(0);
  check_float "second" 62. fps.(1);
  check_float "last power" 4.1 (Trace.last tr "power")

let test_trace_slice () =
  let tr = Trace.create ~columns:[ "v" ] () in
  for i = 0 to 9 do
    Trace.add tr [| float_of_int i |]
  done;
  let s = Trace.column_slice tr "v" ~from:3 ~upto:6 in
  check_int "slice length" 3 (Array.length s);
  check_float "slice start" 3. s.(0)

let test_trace_validation () =
  Alcotest.check_raises "dup" (Invalid_argument "Trace.create: duplicate column")
    (fun () -> ignore (Trace.create ~columns:[ "a"; "a" ] ()));
  let tr = Trace.create ~columns:[ "a" ] () in
  Alcotest.check_raises "width" (Invalid_argument "Trace.add: row width mismatch")
    (fun () -> Trace.add tr [| 1.; 2. |]);
  Alcotest.check_raises "unknown" (Invalid_argument "Trace: unknown column \"z\"")
    (fun () -> ignore (Trace.column tr "z"))

let test_trace_csv () =
  let tr = Trace.create ~columns:[ "a"; "b" ] () in
  Trace.add tr [| 1.; 2. |];
  check_bool "csv" true (Trace.to_csv tr = "a,b\n1,2\n")

let test_trace_growth () =
  (* Well past the 256-row initial capacity, across several doublings:
     the column-major growable storage must behave exactly like the old
     row list. *)
  let n = 3000 in
  let tr = Trace.create ~columns:[ "i"; "sq" ] () in
  for i = 0 to n - 1 do
    Trace.add tr [| float_of_int i; float_of_int (i * i) |]
  done;
  check_int "length" n (Trace.length tr);
  let sq = Trace.column tr "sq" in
  check_int "column length" n (Array.length sq);
  check_float "first" 0. sq.(0);
  check_float "middle" (float_of_int (1500 * 1500)) sq.(1500);
  check_float "last cell" (float_of_int ((n - 1) * (n - 1))) sq.(n - 1);
  let s = Trace.column_slice tr "i" ~from:250 ~upto:260 in
  check_int "slice across the first doubling" 10 (Array.length s);
  check_float "slice start" 250. s.(0);
  check_float "slice end" 259. s.(9);
  check_float "last" (float_of_int (n - 1)) (Trace.last tr "i")

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)
(* ------------------------------------------------------------------ *)

let check_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let test_faults_validation () =
  check_invalid "negative start" (fun () ->
      Faults.injection Faults.Dvfs_stuck ~start_s:(-1.) ~stop_s:1.);
  check_invalid "nan start" (fun () ->
      Faults.injection Faults.Dvfs_stuck ~start_s:nan ~stop_s:1.);
  check_invalid "empty window" (fun () ->
      Faults.injection Faults.Dvfs_stuck ~start_s:2. ~stop_s:2.);
  check_invalid "infinite stop" (fun () ->
      Faults.injection Faults.Dvfs_stuck ~start_s:2. ~stop_s:infinity);
  check_invalid "nan spike magnitude" (fun () ->
      Faults.injection (Faults.Spike_burst (Power, nan)) ~start_s:0. ~stop_s:1.);
  check_invalid "non-positive spike magnitude" (fun () ->
      Faults.injection (Faults.Spike_burst (Qos, 0.)) ~start_s:0. ~stop_s:1.);
  (* create applies the same validation to every element. *)
  check_invalid "create validates elements" (fun () ->
      Faults.create
        [ { Faults.fault = Faults.Dvfs_stuck; start_s = 3.; stop_s = 1. } ])

let test_faults_serialization () =
  let kinds =
    [
      Faults.Dropout Power;
      Faults.Dropout Qos;
      Faults.Stuck_at_last Power;
      Faults.Stuck_at_last Qos;
      Faults.Spike_burst (Power, 5.);
      Faults.Spike_burst (Qos, 0.1234567890123456789);
      Faults.Dvfs_stuck;
      Faults.Gating_refused;
      Faults.Heartbeat_stall;
    ]
  in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        ("kind roundtrip " ^ Faults.kind_to_string k)
        true
        (Faults.kind_of_string (Faults.kind_to_string k) = k))
    kinds;
  List.iter
    (fun k ->
      let i = Faults.injection k ~start_s:1.05 ~stop_s:6.789012345678901 in
      Alcotest.(check bool)
        ("injection roundtrip " ^ Faults.injection_to_string i)
        true
        (Faults.injection_of_string (Faults.injection_to_string i) = i))
    kinds;
  check_invalid "bad kind string" (fun () -> Faults.kind_of_string "meteor");
  check_invalid "bad spike magnitude string" (fun () ->
      Faults.kind_of_string "spike:power:wat");
  check_invalid "bad injection string" (fun () ->
      Faults.injection_of_string "dvfs-stuck");
  (* Deserialization re-validates windows: a hand-edited artifact with a
     negative onset is rejected, not silently misapplied. *)
  check_invalid "deserialized negative onset" (fun () ->
      Faults.injection_of_string "dvfs-stuck@-1/2")

(* Exhaustive round-trip over the full kind space: every sensor channel
   (including all 16 per-cluster power channels) under every
   sensor-indexed constructor, every per-cluster Cluster_dead, the
   nullary kinds, and awkward spike magnitudes.  Permanent kinds
   round-trip through their onset-only windows ([stop_s = infinity]
   prints as "inf" and parses back exactly). *)
let test_faults_serialization_exhaustive () =
  let sensors =
    Faults.[ Power; Qos; Temp ]
    @ List.init 16 (fun i -> Faults.Power_cluster i)
  in
  let magnitudes = [ 0.5; 1.; 4.; 0.1234567890123456789; 1e-3; 1e6 ] in
  let transient =
    List.concat_map
      (fun s ->
        [ Faults.Dropout s; Faults.Stuck_at_last s ]
        @ List.map (fun m -> Faults.Spike_burst (s, m)) magnitudes)
      sensors
    @ Faults.[ Dvfs_stuck; Gating_refused; Heartbeat_stall ]
  in
  let permanent =
    List.map (fun s -> Faults.Sensor_dead s) sensors
    @ List.init 16 (fun i -> Faults.Cluster_dead i)
    @ [ Faults.Dvfs_stuck_permanent ]
  in
  let roundtrip k =
    Alcotest.(check bool)
      ("kind roundtrip " ^ Faults.kind_to_string k)
      true
      (Faults.kind_of_string (Faults.kind_to_string k) = k)
  in
  List.iter roundtrip transient;
  List.iter roundtrip permanent;
  (* Partition agreement: the permanent predicate matches the split. *)
  List.iter
    (fun k ->
      Alcotest.(check bool)
        ("transient " ^ Faults.kind_to_string k)
        false (Faults.is_permanent k))
    transient;
  List.iter
    (fun k ->
      Alcotest.(check bool)
        ("permanent " ^ Faults.kind_to_string k)
        true (Faults.is_permanent k))
    permanent;
  (* Injection round-trip: transient kinds over finite windows with
     non-representable decimal endpoints, permanent kinds onset-only. *)
  List.iter
    (fun k ->
      let i = Faults.injection k ~start_s:0.30000000000000004 ~stop_s:9.7 in
      Alcotest.(check bool)
        ("injection roundtrip " ^ Faults.injection_to_string i)
        true
        (Faults.injection_of_string (Faults.injection_to_string i) = i))
    transient;
  List.iter
    (fun k ->
      let i = Faults.permanent k ~start_s:2.05 in
      let s = Faults.injection_to_string i in
      Alcotest.(check bool)
        ("onset-only roundtrip " ^ s)
        true
        (Faults.injection_of_string s = i);
      Alcotest.(check bool)
        ("onset-only prints inf: " ^ s)
        true
        (String.length s >= 4
        && String.sub s (String.length s - 4) 4 = "/inf"))
    permanent;
  (* Malformed strings: every rejection is a parse error, never a
     silently-misread schedule. *)
  let bad = check_invalid in
  bad "channel index at ceiling" (fun () ->
      Faults.kind_of_string "stuck:power16");
  bad "negative channel index" (fun () ->
      Faults.kind_of_string "dropout:power-1");
  bad "bare channel digits" (fun () -> Faults.kind_of_string "stuck:16");
  bad "dead cluster at ceiling" (fun () ->
      Faults.kind_of_string "cluster-dead:16");
  bad "dead cluster negative" (fun () ->
      Faults.kind_of_string "cluster-dead:-1");
  bad "dead cluster non-numeric" (fun () ->
      Faults.kind_of_string "cluster-dead:big");
  bad "dead sensor unknown" (fun () ->
      Faults.kind_of_string "sensor-dead:banana");
  bad "spike magnitude infinite" (fun () ->
      Faults.kind_of_string "spike:qos:inf");
  bad "spike magnitude negative" (fun () ->
      Faults.kind_of_string "spike:power:-2");
  bad "trailing colon" (fun () -> Faults.kind_of_string "dvfs-stuck:");
  bad "empty string" (fun () -> Faults.kind_of_string "");
  (* Window re-validation through the injection parser: a permanent
     kind with a finite stop, and a transient kind with an infinite
     one, are both schedule bugs. *)
  bad "permanent kind with finite stop" (fun () ->
      Faults.injection_of_string "cluster-dead:1@2/8");
  bad "transient kind with infinite stop" (fun () ->
      Faults.injection_of_string "dvfs-stuck@2/inf");
  bad "missing window" (fun () ->
      Faults.injection_of_string "sensor-dead:power");
  bad "garbled window" (fun () ->
      Faults.injection_of_string "cluster-dead:1@2")

let test_faults_windows () =
  let f =
    Faults.create
      [
        Faults.injection Faults.Dvfs_stuck ~start_s:1. ~stop_s:2.;
        Faults.injection (Faults.Dropout Power) ~start_s:1.5 ~stop_s:3.;
      ]
  in
  check_bool "before" false (Faults.dvfs_stuck f ~now:0.9);
  check_bool "inside" true (Faults.dvfs_stuck f ~now:1.);
  check_bool "stop exclusive" false (Faults.dvfs_stuck f ~now:2.);
  check_int "overlap count" 2 (Faults.active_count f ~now:1.7);
  check_int "none active" 0 (Faults.active_count f ~now:5.)

let test_faults_shift () =
  let shifted =
    Faults.shift
      [ Faults.injection Faults.Heartbeat_stall ~start_s:0.5 ~stop_s:1. ]
      ~by:3.
  in
  match shifted with
  | [ { Faults.start_s; stop_s; _ } ] ->
      check_float "start" 3.5 start_s;
      check_float "stop" 4. stop_s
  | _ -> Alcotest.fail "one injection expected"

(* A schedule whose windows never become active must leave the SoC's
   sensor stream bit-identical: the fault layer draws from its own PRNG
   and only while a spike window is live. *)
let test_faults_inactive_identity () =
  let run faults =
    let soc = fresh_soc () in
    Soc.set_faults soc faults;
    List.init 40 (fun _ -> Soc.step soc ~dt:0.05)
  in
  let plain = run None in
  let armed =
    run
      (Some
         (Faults.create
            [
              Faults.injection
                (Faults.Spike_burst (Power, 5.))
                ~start_s:100. ~stop_s:101.;
            ]))
  in
  List.iter2
    (fun (a : Soc.observation) (b : Soc.observation) ->
      check_float "chip power" a.Soc.chip_power b.Soc.chip_power;
      check_float "qos" a.Soc.qos_rate b.Soc.qos_rate;
      check_float "temperature" a.Soc.temperature_c b.Soc.temperature_c)
    plain armed

let soc_with fault ~start_s ~stop_s =
  let soc = fresh_soc () in
  Soc.set_faults soc (Some (Faults.create [ Faults.injection fault ~start_s ~stop_s ]));
  soc

let test_faults_power_dropout () =
  let soc = soc_with (Faults.Dropout Power) ~start_s:0. ~stop_s:10. in
  let obs = Soc.step soc ~dt:0.05 in
  ignore obs;
  let powers = Soc.sensor_powers soc in
  check_float "big reads dead" 0. powers.(0);
  check_float "little reads dead" 0. powers.(1);
  check_bool "chip still burns power" true (Soc.true_chip_power soc > 0.5)

let test_faults_qos_stuck () =
  let soc = soc_with (Faults.Stuck_at_last Qos) ~start_s:1. ~stop_s:10. in
  let last_healthy = ref 0. in
  for _ = 1 to 19 do
    last_healthy := (Soc.step soc ~dt:0.05).Soc.qos_rate
  done;
  (* Fault opens at t = 1; every subsequent reading repeats the last
     pre-fault one exactly, which live noisy sensors never do. *)
  for _ = 1 to 10 do
    check_float "stuck repeats last reading" !last_healthy
      (Soc.step soc ~dt:0.05).Soc.qos_rate
  done

let test_faults_spikes () =
  let f =
    Faults.create
      [ Faults.injection (Faults.Spike_burst (Power, 5.)) ~start_s:0. ~stop_s:10. ]
  in
  let spiked = ref 0 and clean = ref 0 in
  for _ = 1 to 100 do
    let v = Faults.apply_power f ~now:1. ~cluster:0 2. in
    if v = 10. then incr spiked
    else if v = 2. then incr clean
    else Alcotest.failf "unexpected sample %g" v
  done;
  check_bool "some samples spike" true (!spiked > 0);
  check_bool "most samples clean" true (!clean > !spiked)

let test_faults_heartbeat_stall () =
  let f =
    Faults.create
      [ Faults.injection Faults.Heartbeat_stall ~start_s:0. ~stop_s:10. ]
  in
  check_float "qos reads zero" 0. (Faults.apply_qos f ~now:1. 57.);
  check_float "clears after window" 57. (Faults.apply_qos f ~now:11. 57.)

let test_faults_dvfs_stuck () =
  let soc = soc_with Faults.Dvfs_stuck ~start_s:0. ~stop_s:1. in
  let before = Soc.frequency soc 0 in
  let applied = Soc.set_frequency soc 0 2000. in
  check_int "request ignored" before applied;
  check_int "frequency unchanged" before (Soc.frequency soc 0);
  (* Advance past the window; the driver obeys again. *)
  for _ = 1 to 25 do
    ignore (Soc.step soc ~dt:0.05)
  done;
  check_int "works after window" 2000 (Soc.set_frequency soc 0 2000.)

let test_faults_gating_refused () =
  let soc = soc_with Faults.Gating_refused ~start_s:0. ~stop_s:1. in
  let before = Soc.active_cores soc 0 in
  Soc.set_active_cores soc 0 1;
  check_int "request refused" before (Soc.active_cores soc 0);
  for _ = 1 to 25 do
    ignore (Soc.step soc ~dt:0.05)
  done;
  Soc.set_active_cores soc 0 1;
  check_int "works after window" 1 (Soc.active_cores soc 0)

(* ------------------------------------------------------------------ *)
(* Integration: sysid on the simulated platform                        *)
(* ------------------------------------------------------------------ *)

let test_identify_big_cluster () =
  (* Paper §5/§6 Step 5: excite the Big cluster with the microbenchmark
     and staircase inputs, fit a 2x2 ARX model, and check R² >= 0.8 (the
     design-flow identifiability gate). *)
  let soc = Soc.create ~qos:Benchmarks.microbench () in
  let steps = 900 in
  let freq_sig =
    Spectr_sysid.Excitation.staircase ~lo:600. ~hi:1800. ~num_levels:6 ~hold:12
      ~length:steps
  in
  let cores_sig =
    Spectr_sysid.Excitation.staircase ~lo:1. ~hi:4. ~num_levels:4 ~hold:20
      ~length:steps
  in
  let u = Array.make steps [||] in
  let y = Array.make steps [||] in
  for t = 0 to steps - 1 do
    let f = Soc.set_frequency soc 0 freq_sig.(t) in
    Soc.set_active_cores soc 0
      (int_of_float (Float.round cores_sig.(t)));
    let obs = Soc.step soc ~dt:0.05 in
    u.(t) <- [| float_of_int f /. 1000.; Float.round cores_sig.(t) |];
    y.(t) <- [| obs.Soc.qos_rate; (Soc.sensor_powers soc).(0) |]
  done;
  let data = Spectr_sysid.Dataset.create ~u ~y in
  let normalized, _ = Spectr_sysid.Dataset.normalize data in
  let est, held_out = Spectr_sysid.Dataset.split normalized ~at:0.6 in
  match Spectr_sysid.Arx.fit ~na:2 ~nb:2 est with
  | Error e -> Alcotest.failf "fit: %a" Spectr_sysid.Arx.pp_error e
  | Ok model ->
      let report =
        Spectr_sysid.Validation.validate
          ~output_names:[| "qos"; "power" |]
          ~model held_out
      in
      Array.iter
        (fun c ->
          check_bool
            (c.Spectr_sysid.Validation.name ^ " R2 >= 0.8")
            true
            (c.Spectr_sysid.Validation.r_squared >= 0.8))
        report.Spectr_sysid.Validation.channels

(* ------------------------------------------------------------------ *)
(* Platform_desc                                                       *)
(* ------------------------------------------------------------------ *)

let test_desc_builtins () =
  List.iter
    (fun p ->
      check_bool
        (Platform_desc.name p ^ " has clusters")
        true
        (Platform_desc.num_clusters p >= 1);
      check_bool
        (Platform_desc.name p ^ " host in range")
        true
        (Platform_desc.host p >= 0
        && Platform_desc.host p < Platform_desc.num_clusters p);
      check_bool
        (Platform_desc.name p ^ " describes")
        true
        (String.length (Platform_desc.describe p) > 0))
    (Platform_desc.builtins ());
  (* The reference platform's identity is load-bearing: design-flow memo
     keys, checkpoint tags and the byte-identity gate all hang off it. *)
  Alcotest.(check string)
    "exynos5422 digest pinned" "0c8dadf6e533fd63e717d00fbe39844a"
    (Platform_desc.digest Platform_desc.exynos5422);
  check_int "exynos clusters" 2
    (Platform_desc.num_clusters Platform_desc.exynos5422);
  check_int "exynos cores" 8 (Platform_desc.total_cores Platform_desc.exynos5422);
  check_int "pixel8pro clusters" 3
    (Platform_desc.num_clusters Platform_desc.pixel8pro);
  check_int "pixel8pro cores" 9
    (Platform_desc.total_cores Platform_desc.pixel8pro)

let test_desc_csv_roundtrip () =
  List.iter
    (fun p ->
      match Platform_desc.of_csv_string (Platform_desc.to_csv_string p) with
      | Ok q ->
          Alcotest.(check string)
            (Platform_desc.name p ^ " round-trips")
            (Platform_desc.digest p) (Platform_desc.digest q)
      | Error e ->
          Alcotest.failf "%s: %s" (Platform_desc.name p)
            (Format.asprintf "%a" Platform_desc.pp_parse_error e))
    (Platform_desc.builtins ())

let test_desc_csv_errors () =
  let reject ?line what csv =
    match Platform_desc.of_csv_string csv with
    | Ok _ -> Alcotest.failf "%s: expected a parse error" what
    | Error e -> (
        match line with
        | Some l -> check_int (what ^ " line") l e.Platform_desc.line
        | None -> ())
  in
  reject "empty" "";
  reject ~line:1 "unknown row kind" "bogus,1,2\n";
  reject ~line:2 "bad core count"
    "platform,p\ncluster,big,zero,0.3,0.1,0.01,0.1,host\n";
  reject "missing thermal"
    "platform,p\nhost,big\ncluster,big,4,0.3,0.1,0.01,0.1,host\n\
     opp,big,1000,1.0\n";
  reject "unknown host cluster"
    "platform,p\nthermal,25,2,8\nhost,nope\n\
     cluster,big,4,0.3,0.1,0.01,0.1,host\nopp,big,1000,1.0\n";
  reject "cluster without opps"
    "platform,p\nthermal,25,2,8\nhost,big\n\
     cluster,big,4,0.3,0.1,0.01,0.1,host\n"

let test_desc_k_cluster () =
  let p = Platform_desc.k_cluster 5 in
  check_int "k5 clusters" 5 (Platform_desc.num_clusters p);
  check_int "k5 host" 0 (Platform_desc.host p);
  Alcotest.check_raises "k0 rejected"
    (Invalid_argument "Platform_desc.k_cluster: k = 0 not in 1..16")
    (fun () -> ignore (Platform_desc.k_cluster 0));
  (* Core offsets tile the global core index space. *)
  let off = ref 0 in
  for i = 0 to Platform_desc.num_clusters p - 1 do
    check_int
      (Printf.sprintf "offset %d" i)
      !off
      (Platform_desc.core_offset p i);
    off := !off + (Platform_desc.cluster p i).Platform_desc.cores
  done;
  check_int "offsets cover all cores" (Platform_desc.total_cores p) !off

let test_desc_find_cluster () =
  let p = Platform_desc.pixel8pro in
  Alcotest.(check (option int))
    "big found"
    (Some (Platform_desc.host p))
    (Platform_desc.find_cluster p "big");
  Alcotest.(check (option int))
    "unknown cluster" None
    (Platform_desc.find_cluster p "gpu")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "spectr_platform"
    [
      ( "opp",
        [
          Alcotest.test_case "tables" `Quick test_opp_tables;
          Alcotest.test_case "nearest" `Quick test_opp_nearest;
          Alcotest.test_case "nearest scan (non-uniform)" `Quick
            test_opp_nearest_scan;
          Alcotest.test_case "voltage monotone" `Quick test_opp_voltage_monotone;
          Alcotest.test_case "voltage unknown" `Quick test_opp_voltage_unknown;
          Alcotest.test_case "create validation" `Quick
            test_opp_create_validation;
        ] );
      ( "workload",
        [
          Alcotest.test_case "validation" `Quick test_workload_validation;
          Alcotest.test_case "phases" `Quick test_workload_phases;
          Alcotest.test_case "phase default" `Quick test_workload_phase_default;
          Alcotest.test_case "amdahl" `Quick test_amdahl;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "PARSEC speedup range" `Quick
            test_speedup_range_parsec;
          Alcotest.test_case "x264 FPS ceiling" `Quick test_x264_fps_ceiling;
          Alcotest.test_case "lookup" `Quick test_benchmark_lookup;
        ] );
      ( "perf-model",
        [
          Alcotest.test_case "monotone in frequency" `Quick
            test_perf_monotone_in_frequency;
          Alcotest.test_case "memory-bound saturates" `Quick
            test_perf_memory_bound_saturates;
          Alcotest.test_case "little slower" `Quick test_perf_little_slower;
          Alcotest.test_case "freq scaling exact" `Quick
            test_perf_freq_scaling_exact;
          Alcotest.test_case "IPC reference" `Quick test_perf_ipc_reference;
        ] );
      ( "power-model",
        [
          Alcotest.test_case "full tilt" `Quick test_power_full_tilt;
          Alcotest.test_case "monotone" `Quick test_power_monotone;
          Alcotest.test_case "core gating" `Quick test_power_core_gating;
          Alcotest.test_case "utilization" `Quick test_power_utilization;
          Alcotest.test_case "little cheap" `Quick test_power_little_cheap;
        ] );
      ( "soc",
        [
          Alcotest.test_case "actuators" `Quick test_soc_actuators;
          Alcotest.test_case "idle insertion" `Quick test_soc_idle_insertion;
          Alcotest.test_case "idle reduces qos" `Quick test_soc_idle_reduces_qos;
          Alcotest.test_case "qos vs frequency" `Quick
            test_soc_qos_responds_to_frequency;
          Alcotest.test_case "qos vs cores" `Quick test_soc_qos_responds_to_cores;
          Alcotest.test_case "background interference" `Quick
            test_soc_background_interference;
          Alcotest.test_case "background little first" `Quick
            test_soc_background_little_first;
          Alcotest.test_case "power range" `Quick test_soc_power_range;
          Alcotest.test_case "step and noise" `Quick test_soc_step_and_noise;
          Alcotest.test_case "deterministic" `Quick test_soc_deterministic;
          Alcotest.test_case "per-core IPS idle" `Quick
            test_soc_per_core_ips_idle_sensitive;
          Alcotest.test_case "canneal serial phase" `Quick
            test_soc_canneal_serial_phase;
        ] );
      ( "thermal",
        [
          Alcotest.test_case "starts at ambient" `Quick
            test_thermal_starts_ambient;
          Alcotest.test_case "heats under load" `Quick
            test_thermal_heats_under_load;
          Alcotest.test_case "cools when idle" `Quick
            test_thermal_cools_when_idle;
          Alcotest.test_case "time constant" `Quick test_thermal_time_constant;
          Alcotest.test_case "observation sensor" `Quick
            test_thermal_in_observation;
        ] );
      ( "heartbeats",
        [
          Alcotest.test_case "rate" `Quick test_heartbeats_rate;
          Alcotest.test_case "window expiry" `Quick test_heartbeats_window_expiry;
          Alcotest.test_case "reference" `Quick test_heartbeats_reference;
          Alcotest.test_case "time monotone" `Quick test_heartbeats_time_monotone;
        ] );
      ( "trace",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "slice" `Quick test_trace_slice;
          Alcotest.test_case "validation" `Quick test_trace_validation;
          Alcotest.test_case "csv" `Quick test_trace_csv;
          Alcotest.test_case "growth past initial capacity" `Quick
            test_trace_growth;
        ] );
      ( "faults",
        [
          Alcotest.test_case "validation" `Quick test_faults_validation;
          Alcotest.test_case "serialization roundtrip" `Quick
            test_faults_serialization;
          Alcotest.test_case "serialization exhaustive" `Quick
            test_faults_serialization_exhaustive;
          Alcotest.test_case "windows" `Quick test_faults_windows;
          Alcotest.test_case "shift" `Quick test_faults_shift;
          Alcotest.test_case "inactive is bit-identical" `Quick
            test_faults_inactive_identity;
          Alcotest.test_case "power dropout" `Quick test_faults_power_dropout;
          Alcotest.test_case "qos stuck" `Quick test_faults_qos_stuck;
          Alcotest.test_case "spike bursts" `Quick test_faults_spikes;
          Alcotest.test_case "heartbeat stall" `Quick
            test_faults_heartbeat_stall;
          Alcotest.test_case "dvfs stuck" `Quick test_faults_dvfs_stuck;
          Alcotest.test_case "gating refused" `Quick test_faults_gating_refused;
        ] );
      ( "platform-desc",
        [
          Alcotest.test_case "builtins validate" `Quick test_desc_builtins;
          Alcotest.test_case "csv round-trip" `Quick test_desc_csv_roundtrip;
          Alcotest.test_case "csv parse errors" `Quick test_desc_csv_errors;
          Alcotest.test_case "k-cluster generator" `Quick test_desc_k_cluster;
          Alcotest.test_case "find cluster" `Quick test_desc_find_cluster;
        ] );
      ( "integration",
        [
          Alcotest.test_case "identify Big cluster" `Slow
            test_identify_big_cluster;
        ] );
    ]
