(* Tests for the SPECTR core: the case-study automata, supervisor
   synthesis and verification, the runtime supervisor (against mock
   commands), the design flow, the four resource managers and the
   three-phase evaluation scenario.

   The scenario tests assert the paper's qualitative claims (who wins,
   in which phase, by direction) rather than absolute numbers. *)

open Spectr_automata
open Spectr_platform
open Spectr

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let test_events_controllability () =
  check_bool "critical uncontrollable" false
    (Event.is_controllable Events.critical);
  check_bool "switchPower controllable" true
    (Event.is_controllable Events.switch_power);
  check_bool "holdBudget controllable" true
    (Event.is_controllable Events.hold_budget)

let test_events_lookup () =
  (match Events.by_name "critical" with
  | Some e -> check_string "name" "critical" (Event.name e)
  | None -> Alcotest.fail "critical exists");
  check_bool "unknown" true (Events.by_name "zap" = None);
  check_int "alphabet size" 17 (List.length Events.all)

(* ------------------------------------------------------------------ *)
(* Plant model and spec                                                *)
(* ------------------------------------------------------------------ *)

let test_plant_qos_management_shape () =
  let a = Plant_model.qos_management in
  check_int "3 states" 3 (Automaton.num_states a);
  check_string "initial" "Eval" (Automaton.initial a);
  check_bool "Eval marked" true (Automaton.is_marked a "Eval");
  check_bool "Raise not marked" false (Automaton.is_marked a "Raise")

let test_plant_power_capping_shape () =
  let a = Plant_model.power_capping in
  check_int "7 states" 7 (Automaton.num_states a);
  (* emergency path: critical -> switch -> capped -> safe -> restore -> qos *)
  match
    Automaton.trace a
      [
        Events.critical;
        Events.switch_power;
        Events.safe_power;
        Events.switch_qos;
      ]
  with
  | Some s -> check_string "returns to Safe" "Safe" s
  | None -> Alcotest.fail "emergency round trip must be defined"

let test_plant_composed () =
  let c = Plant_model.composed () in
  check_bool "composition nonempty" true (Automaton.num_states c > 3);
  check_string "ideal initial" "Eval.Safe" (Automaton.initial c);
  (* only (Eval, Safe) is marked *)
  check_int "single marked" 1 (List.length (Automaton.marked c))

let test_spec_shape () =
  let s = Spec.three_band in
  check_bool "threshold forbidden" true (Automaton.is_forbidden s "Threshold");
  check_string "initial" "Uncapped" (Automaton.initial s);
  (* three consecutive criticals hit the forbidden state *)
  match Automaton.trace s [ Events.critical; Events.critical; Events.critical ] with
  | Some st -> check_string "threshold" "Threshold" st
  | None -> Alcotest.fail "critical chain defined in spec"

let test_spec_forbids_increase_when_capped () =
  let s = Spec.three_band in
  match
    Automaton.trace s
      [ Events.critical; Events.switch_power; Events.increase_big_power ]
  with
  | Some st -> check_string "forbidden" "Threshold" st
  | None -> Alcotest.fail "transition defined (to the forbidden state)"

(* ------------------------------------------------------------------ *)
(* Synthesis                                                           *)
(* ------------------------------------------------------------------ *)

let test_synthesize_properties () =
  let sup, stats = Supervisor.synthesize () in
  let plant = Plant_model.composed () in
  check_bool "nonblocking" true (Verify.is_nonblocking sup);
  check_bool "controllable" true (Verify.is_controllable ~plant ~supervisor:sup);
  check_bool "pruned forbidden product states" true
    (stats.Synthesis.removed_forbidden > 0);
  check_bool "supervisor nonempty" true (Automaton.num_states sup > 0);
  check_bool "smaller than raw product" true
    (Automaton.num_states sup < stats.Synthesis.product_states)

let test_synthesized_supervisor_disables_increase_when_capped () =
  let sup, _ = Supervisor.synthesize () in
  (* Walk into capped mode, then check increase events are not enabled. *)
  match
    Automaton.trace sup
      [ Events.qos_not_met; Events.critical; Events.switch_power ]
  with
  | None -> Alcotest.fail "capped mode reachable"
  | Some st ->
      let enabled = Automaton.enabled sup st in
      check_bool "increaseBigPower disabled" false
        (List.exists (fun e -> Event.name e = "increaseBigPower") enabled)

let test_synthesized_supervisor_can_recover () =
  let sup, _ = Supervisor.synthesize () in
  (* From capped mode, safePower then switchQoS must lead back to a state
     where the ideal state is reachable. *)
  match
    Automaton.trace sup
      [
        Events.qos_not_met;
        Events.critical;
        Events.switch_power;
        Events.safe_power;
        Events.switch_qos;
      ]
  with
  | None -> Alcotest.fail "recovery path exists"
  | Some st ->
      check_bool "back in an uncapped state" true
        (String.length st >= 4 && String.sub st 0 4 <> "Cap")

let test_supcon_par_pins_case_study () =
  (* The 21-state case-study supervisor, synthesized by the sharded
     parallel engine at several job counts, must be byte-identical
     (digest and stats) to the sequential fixture. *)
  let plant = Plant_model.composed () in
  let spec = Spec.three_band in
  match Synthesis.supcon ~plant ~spec with
  | Error _ -> Alcotest.fail "case-study supervisor exists"
  | Ok (sup_seq, stats_seq) ->
      check_int "case-study supervisor is the 21-state machine" 21
        (Automaton.num_states sup_seq);
      List.iter
        (fun jobs ->
          match Synthesis.supcon_par ~jobs ~plant ~spec () with
          | Error _ -> Alcotest.failf "jobs=%d: unexpectedly empty" jobs
          | Ok (sup_par, stats_par) ->
              check_string
                (Printf.sprintf "jobs=%d digest identical" jobs)
                (Automaton.structural_digest sup_seq)
                (Automaton.structural_digest sup_par);
              check_bool
                (Printf.sprintf "jobs=%d stats identical" jobs)
                true (stats_seq = stats_par))
        [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Description-driven synthesis: N-cluster platforms                   *)
(* ------------------------------------------------------------------ *)

let test_platform_synthesis_legal () =
  List.iter
    (fun platform ->
      let name = Platform_desc.name platform in
      let sup, stats = Supervisor.synthesize ~platform () in
      let plant = Plant_model.composed_for platform in
      check_bool (name ^ " nonblocking") true (Verify.is_nonblocking sup);
      check_bool (name ^ " controllable") true
        (Verify.is_controllable ~plant ~supervisor:sup);
      check_bool (name ^ " nonempty") true (Automaton.num_states sup > 0);
      check_bool (name ^ " no states invented") true
        (Automaton.num_states sup <= stats.Spectr_automata.Synthesis.product_states);
      (* Every cluster's budget-command family must survive synthesis:
         a supervisor that lost a cluster's increase or decrease event
         could never regulate that cluster again. *)
      let fam = Events.for_platform platform in
      let alphabet = Automaton.alphabet sup in
      for i = 0 to Platform_desc.num_clusters platform - 1 do
        check_bool
          (Printf.sprintf "%s: increase c%d in alphabet" name i)
          true
          (Event.Set.mem (Events.increase fam i) alphabet);
        check_bool
          (Printf.sprintf "%s: decrease c%d in alphabet" name i)
          true
          (Event.Set.mem (Events.decrease fam i) alphabet)
      done)
    [
      Platform_desc.pixel8pro;
      Platform_desc.k_cluster 3;
      Platform_desc.k_cluster 6;
    ]

(* The per-cluster command families are minted through the interner:
   exynos5422's family IS the hand-written constants, and pixel8pro's
   names follow the increase<Name>Power scheme. *)
let test_platform_event_families () =
  let ex = Events.for_platform Platform_desc.exynos5422 in
  check_bool "exynos increase host is the constant" true
    (Event.equal (Events.increase ex 0) Events.increase_big_power);
  check_bool "exynos decrease little is the constant" true
    (Event.equal (Events.decrease ex 1) Events.decrease_little_power);
  let px = Events.for_platform Platform_desc.pixel8pro in
  List.iteri
    (fun i expected ->
      check_string
        (Printf.sprintf "pixel8pro increase c%d name" i)
        expected
        (Event.name (Events.increase px i)))
    [ "increaseLittlePower"; "increaseBigPower"; "increasePrimePower" ];
  (* by_name covers minted per-cluster events, not just the constants. *)
  match Events.by_name "increasePrimePower" with
  | None -> Alcotest.fail "by_name misses minted per-cluster events"
  | Some e -> check_bool "same event" true (Event.equal e (Events.increase px 2))

(* Run a pixel8pro supervisor through miss, surplus, emergency and
   recovery, and pin the per-cluster command flow: every cluster's
   reference is seeded at create, the host budget moves on QoS
   error, and every reference stays positive and finite throughout. *)
let test_platform_event_flow () =
  let platform = Platform_desc.pixel8pro in
  let k = Platform_desc.num_clusters platform in
  let host = Platform_desc.host platform in
  let refs = Array.make k nan in
  let sets = Array.make k 0 in
  let gains = ref [] in
  let commands =
    {
      Supervisor.switch_gains = (fun l -> gains := l :: !gains);
      set_power_ref =
        (fun i v ->
          refs.(i) <- v;
          sets.(i) <- sets.(i) + 1);
    }
  in
  let sup = Supervisor.create ~commands ~platform ~envelope:5.0 () in
  check_int "supervisor sees 3 clusters" k (Supervisor.num_clusters sup);
  check_int "host index" host (Supervisor.host_cluster sup);
  Array.iteri
    (fun i v ->
      check_bool (Printf.sprintf "cluster %d seeded at create" i) true
        (Float.is_finite v && v > 0.))
    refs;
  (* QoS miss with safe power: the host budget must rise. *)
  let host_before = Supervisor.power_ref sup host in
  Supervisor.step sup ~qos:40. ~qos_ref:60. ~power:2.0 ~envelope:5.0;
  check_bool "host budget raised on miss" true
    (Supervisor.power_ref sup host > host_before);
  (* QoS surplus: the host budget must come back down. *)
  let host_high = Supervisor.power_ref sup host in
  Supervisor.step sup ~qos:80. ~qos_ref:60. ~power:2.0 ~envelope:5.0;
  check_bool "host budget lowered on surplus" true
    (Supervisor.power_ref sup host < host_high);
  (* Emergency: gains switch to power mode. *)
  Supervisor.step sup ~qos:60. ~qos_ref:60. ~power:6.0 ~envelope:5.0;
  check_string "emergency switches gains" "power" (Supervisor.gains_mode sup);
  check_bool "switch delivered" true (List.mem "power" !gains);
  (* Long mixed run: every cluster's reference stays physical. *)
  for t = 1 to 200 do
    let qos = if t mod 3 = 0 then 40. else 75. in
    let power = if t mod 7 = 0 then 5.6 else 2.5 in
    Supervisor.step sup ~qos ~qos_ref:60. ~power ~envelope:5.0;
    for i = 0 to k - 1 do
      let r = Supervisor.power_ref sup i in
      check_bool
        (Printf.sprintf "t=%d cluster %d ref finite positive" t i)
        true
        (Float.is_finite r && r > 0. && r <= 5.5)
    done
  done;
  (* The mock and the supervisor agree on the final per-cluster refs. *)
  Array.iteri
    (fun i v -> check_float (Printf.sprintf "cluster %d agrees" i) v
        (Supervisor.power_ref sup i))
    refs

(* ------------------------------------------------------------------ *)
(* Runtime supervisor against mock commands                            *)
(* ------------------------------------------------------------------ *)

type mock = {
  mutable gains : string list; (* switch history, newest first *)
  mutable big_ref : float;
  mutable little_ref : float;
}

let make_mock () =
  let m = { gains = []; big_ref = nan; little_ref = nan } in
  let commands =
    {
      Supervisor.switch_gains = (fun l -> m.gains <- l :: m.gains);
      set_power_ref =
        (fun i v -> if i = 0 then m.big_ref <- v else m.little_ref <- v);
    }
  in
  (m, commands)

let test_supervisor_initial_budgets () =
  let m, commands = make_mock () in
  let sup = Supervisor.create ~commands ~envelope:5.0 () in
  check_bool "initial big ref set" true (m.big_ref > 0.);
  check_float "reported" m.big_ref (Supervisor.power_ref sup 0);
  check_string "starts in qos mode" "qos" (Supervisor.gains_mode sup)

let test_supervisor_validation () =
  let _, commands = make_mock () in
  Alcotest.check_raises "bad envelope"
    (Invalid_argument "Supervisor.create: envelope <= 0") (fun () ->
      ignore (Supervisor.create ~commands ~envelope:0. ()))

let test_supervisor_emergency_switches_gains () =
  let m, commands = make_mock () in
  let sup = Supervisor.create ~commands ~envelope:5.0 () in
  (* power above the envelope -> critical -> switchPower *)
  Supervisor.step sup ~qos:60. ~qos_ref:60. ~power:5.5 ~envelope:5.0;
  check_string "power mode" "power" (Supervisor.gains_mode sup);
  check_bool "switch delivered" true (List.mem "power" m.gains)

let test_supervisor_recovers_to_qos_mode () =
  let m, commands = make_mock () in
  let sup = Supervisor.create ~commands ~envelope:5.0 () in
  Supervisor.step sup ~qos:60. ~qos_ref:60. ~power:5.5 ~envelope:5.0;
  (* power safe again — but the uncapping hysteresis holds power mode for
     min_capped_dwell supervisor periods before switching back *)
  Supervisor.step sup ~qos:60. ~qos_ref:60. ~power:3.0 ~envelope:5.0;
  check_string "dwell holds power mode" "power" (Supervisor.gains_mode sup);
  for _ = 1 to Supervisor.default_config.Supervisor.min_capped_dwell do
    Supervisor.step sup ~qos:60. ~qos_ref:60. ~power:3.0 ~envelope:5.0
  done;
  check_string "back to qos" "qos" (Supervisor.gains_mode sup);
  check_bool "both switches seen" true
    (List.mem "qos" m.gains && List.mem "power" m.gains)

let test_supervisor_raises_budget_on_qos_miss () =
  let _, commands = make_mock () in
  let sup = Supervisor.create ~commands ~envelope:5.0 () in
  let before = Supervisor.power_ref sup 0 in
  (* QoS below reference, power safe -> Raise -> increaseBigPower *)
  Supervisor.step sup ~qos:40. ~qos_ref:60. ~power:2.0 ~envelope:5.0;
  check_bool "budget raised" true (Supervisor.power_ref sup 0 > before)

let test_supervisor_lowers_budget_on_qos_surplus () =
  let _, commands = make_mock () in
  let sup = Supervisor.create ~commands ~envelope:5.0 () in
  let before = Supervisor.power_ref sup 0 in
  (* QoS well above reference -> Lower -> decreaseBigPower *)
  Supervisor.step sup ~qos:80. ~qos_ref:60. ~power:2.0 ~envelope:5.0;
  check_bool "budget lowered" true (Supervisor.power_ref sup 0 < before)

let test_supervisor_budget_cap_respects_envelope () =
  let _, commands = make_mock () in
  let sup = Supervisor.create ~commands ~envelope:5.0 () in
  (* push the budget up for a long time *)
  for _ = 1 to 100 do
    Supervisor.step sup ~qos:30. ~qos_ref:60. ~power:3.0 ~envelope:5.0
  done;
  (* 90 % of the Little budget is reserved against the envelope; the
     rest is left to the critical-event feedback loop. *)
  check_bool "big + 0.9*little within envelope" true
    (Supervisor.power_ref sup 0
     +. (0.9 *. Supervisor.power_ref sup 1)
    <= 5.0 +. 1e-9)

let test_supervisor_envelope_drop_reclamps () =
  let _, commands = make_mock () in
  let sup = Supervisor.create ~commands ~envelope:5.0 () in
  for _ = 1 to 50 do
    Supervisor.step sup ~qos:30. ~qos_ref:60. ~power:3.0 ~envelope:5.0
  done;
  (* thermal emergency: envelope drops; budgets must re-clamp *)
  Supervisor.step sup ~qos:60. ~qos_ref:60. ~power:3.0 ~envelope:3.5;
  check_bool "reclamped under new envelope" true
    (Supervisor.power_ref sup 0 <= 3.5 +. 1e-9)

let test_supervisor_critical_cut () =
  let _, commands = make_mock () in
  let sup = Supervisor.create ~commands ~envelope:5.0 () in
  (* enter capped mode *)
  Supervisor.step sup ~qos:60. ~qos_ref:60. ~power:5.5 ~envelope:5.0;
  let capped_ref = Supervisor.power_ref sup 0 in
  (* still critical while capped -> decreaseCriticalPower *)
  Supervisor.step sup ~qos:60. ~qos_ref:60. ~power:5.5 ~envelope:5.0;
  check_bool "deep cut applied" true (Supervisor.power_ref sup 0 < capped_ref)

let test_supervisor_state_never_stuck () =
  (* Drive with adversarial random measurements; the supervisor must keep
     consuming events (never deadlock in a budget-evaluation state). *)
  let _, commands = make_mock () in
  let sup = Supervisor.create ~commands ~envelope:5.0 () in
  let g = Spectr_linalg.Prng.create 5L in
  for _ = 1 to 500 do
    let qos = Spectr_linalg.Prng.uniform g ~lo:10. ~hi:90. in
    let power = Spectr_linalg.Prng.uniform g ~lo:0.5 ~hi:6.5 in
    let envelope = if Spectr_linalg.Prng.bool g then 5.0 else 3.5 in
    Supervisor.step sup ~qos ~qos_ref:60. ~power ~envelope
  done;
  (* After driving power safe + QoS met, the supervisor must reach the
     budget-evaluation state again. *)
  Supervisor.step sup ~qos:60. ~qos_ref:60. ~power:3.0 ~envelope:5.0;
  Supervisor.step sup ~qos:60. ~qos_ref:60. ~power:3.0 ~envelope:5.0;
  let state = Supervisor.state sup in
  check_bool "in an Eval state"
    true
    (String.length state >= 4 && String.sub state 0 4 = "Eval")

let test_supervisor_budget_invariants_random_walk () =
  (* Under arbitrary measurements the budgets must stay inside their
     configured box and the mode must stay in {qos, power}. *)
  let _, commands = make_mock () in
  let sup = Supervisor.create ~commands ~envelope:5.0 () in
  let g = Spectr_linalg.Prng.create 77L in
  let c = Supervisor.default_config in
  for _ = 1 to 1000 do
    let qos = Spectr_linalg.Prng.uniform g ~lo:0. ~hi:150. in
    let power = Spectr_linalg.Prng.uniform g ~lo:0.1 ~hi:7.0 in
    let envelope =
      [| 5.0; 3.5; 2.5 |].(Spectr_linalg.Prng.int g 3)
    in
    Supervisor.step sup ~qos ~qos_ref:60. ~power ~envelope;
    let b = Supervisor.power_ref sup 0 in
    let l = Supervisor.power_ref sup 1 in
    check_bool "big >= min" true (b >= c.Supervisor.big_budget_min -. 1e-9);
    check_bool "big <= envelope" true (b <= 5.0 +. 1e-9);
    check_bool "little in box" true
      (l >= c.Supervisor.little_budget_min -. 1e-9
      && l <= c.Supervisor.little_budget_max +. 1e-9);
    check_bool "mode valid" true
      (let m = Supervisor.gains_mode sup in
       m = "qos" || m = "power")
  done

let test_scenario_deterministic () =
  (* Same seed, same manager construction -> identical traces. *)
  let run () =
    let mgr = Mm.make_pow () in
    let config = Scenario.default_config Benchmarks.x264 in
    let trace = Scenario.run ~manager:mgr config in
    Trace.column trace "power"
  in
  let a = run () and b = run () in
  Array.iteri (fun i v -> check_float (string_of_int i) v b.(i)) a

(* ------------------------------------------------------------------ *)
(* Design flow                                                         *)
(* ------------------------------------------------------------------ *)

let test_design_flow_big_identifiable () =
  let ident = Design_flow.identify Design_flow.Big_2x2 in
  check_bool "R2 gate" true ident.Design_flow.report.Spectr_sysid.Validation.identifiable;
  check_int "2 inputs" 2 (Array.length ident.Design_flow.input_channels);
  check_int "2 outputs" 2 (Array.length ident.Design_flow.output_channels)

let test_design_flow_large_worse_than_small ()
    =
  (* The §5.2 scalability claim: identification accuracy degrades as the
     controller grows. *)
  let small = Design_flow.identify Design_flow.Big_2x2 in
  let large = Design_flow.identify Design_flow.Large_10x10 in
  let avg_fit ident =
    let chans = ident.Design_flow.report.Spectr_sysid.Validation.channels in
    Array.fold_left
      (fun acc c -> acc +. c.Spectr_sysid.Validation.fit_percent)
      0. chans
    /. float_of_int (Array.length chans)
  in
  check_bool "10x10 fits worse than 2x2" true (avg_fit large < avg_fit small);
  check_int "10 inputs" 10 (Array.length large.Design_flow.input_channels)

let test_design_flow_gains () =
  let ident = Design_flow.identify Design_flow.Big_2x2 in
  match
    Design_flow.design_gains ident
      [
        { Design_flow.label = "qos"; q_y = Mm.qos_weights };
        { Design_flow.label = "power"; q_y = Mm.power_weights };
      ]
  with
  | Error msg -> Alcotest.fail msg
  | Ok gains ->
      check_int "two gain sets" 2 (List.length gains);
      List.iter
        (fun g ->
          check_bool
            (g.Spectr_control.Lqg.label ^ " stable")
            true
            (Spectr_control.Lqg.closed_loop_stable g))
        gains

let test_design_flow_bad_goal () =
  let ident = Design_flow.identify Design_flow.Big_2x2 in
  match
    Design_flow.design_gains ident
      [ { Design_flow.label = "bad"; q_y = [| 1. |] } ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong q_y arity must fail"

(* ------------------------------------------------------------------ *)
(* Ops cost (Figure 6)                                                 *)
(* ------------------------------------------------------------------ *)

let test_ops_cost_dims () =
  check_bool "2 cores -> 4x4 I/O" true (Ops_cost.inputs_outputs ~cores:2 = (4, 4))

let test_ops_cost_monotone_in_cores () =
  let prev = ref 0. in
  List.iter
    (fun c ->
      let v = Ops_cost.paper_curve ~cores:c ~order:4 in
      check_bool "monotone" true (v > !prev);
      prev := v)
    [ 2; 4; 8; 16; 32; 64 ]

let test_ops_cost_order_insignificant_at_scale () =
  (* §2.3: "The order becomes insignificant once #cores >> order." *)
  let at order = Ops_cost.paper_curve ~cores:70 ~order in
  let ratio_large = at 8 /. at 2 in
  let at_small order = Ops_cost.paper_curve ~cores:2 ~order in
  let ratio_small = at_small 8 /. at_small 2 in
  check_bool "order matters at small scale" true (ratio_small > 2.);
  check_bool "order negligible at large scale" true (ratio_large < 1.25)

let test_ops_cost_magnitude () =
  (* Figure 6's y-axis tops out around 1e8-1e9 at 70 cores. *)
  let v = Ops_cost.paper_curve ~cores:70 ~order:8 in
  check_bool "matches figure magnitude" true (v > 1e8 && v < 1e9)

let test_ops_cost_invocation () =
  check_bool "invocation quadratic" true
    (Ops_cost.invocation_ops ~cores:8 ~order:2
    > Ops_cost.invocation_ops ~cores:2 ~order:2);
  Alcotest.check_raises "bad cores" (Invalid_argument "Ops_cost: cores <= 0")
    (fun () -> ignore (Ops_cost.invocation_ops ~cores:0 ~order:2))

(* ------------------------------------------------------------------ *)
(* Scenario + managers (paper claims, x264)                            *)
(* ------------------------------------------------------------------ *)

(* Building managers runs identification; do it once for the module. *)
let cfg = Scenario.default_config Benchmarks.x264

let metrics_of mgr =
  let trace = Scenario.run ~manager:mgr cfg in
  Metrics.per_phase ~trace ~config:cfg

let spectr_metrics = lazy (metrics_of (fst (Spectr_manager.make ())))
let mm_pow_metrics = lazy (metrics_of (Mm.make_pow ()))
let mm_perf_metrics = lazy (metrics_of (Mm.make_perf ()))
let fs_metrics = lazy (metrics_of (Fs.make ()))

let test_scenario_trace_shape () =
  let trace = Scenario.run ~manager:(Mm.make_pow ()) cfg in
  (* 15 s at 50 ms -> 300 rows *)
  check_int "rows" 300 (Trace.length trace);
  let bounds = Scenario.phase_bounds cfg in
  check_int "three phases" 3 (List.length bounds);
  match bounds with
  | [ (_, a, b); (_, c, d); (_, e, f) ] ->
      check_int "contiguous 1" b c;
      check_int "contiguous 2" d e;
      check_int "start" 0 a;
      check_int "end" 300 f
  | _ -> Alcotest.fail "unexpected bounds"

let test_safe_phase_qos () =
  (* Phase 1: every manager meets (or exceeds) the achievable QoS
     reference within ~10 %. *)
  List.iter
    (fun (name, m) ->
      let q = Metrics.qos_of (Lazy.force m) "safe" in
      check_bool (name ^ " meets QoS in safe phase") true (q < 10.))
    [
      ("SPECTR", spectr_metrics);
      ("MM-Pow", mm_pow_metrics);
      ("MM-Perf", mm_perf_metrics);
      ("FS", fs_metrics);
    ]

let test_safe_phase_efficiency_split () =
  (* Paper §5.1.1: SPECTR and MM-Perf save significant power while
     meeting QoS; MM-Pow and FS consume the budget and overshoot FPS. *)
  let p name m = Metrics.power_of (Lazy.force m) name in
  let q name m = Metrics.qos_of (Lazy.force m) name in
  check_bool "SPECTR saves power" true (p "safe" spectr_metrics > 30.);
  check_bool "MM-Perf saves power" true (p "safe" mm_perf_metrics > 30.);
  check_bool "MM-Pow burns budget" true (p "safe" mm_pow_metrics < 20.);
  check_bool "FS burns budget" true (p "safe" fs_metrics < 20.);
  check_bool "MM-Pow overshoots FPS" true (q "safe" mm_pow_metrics < -10.);
  check_bool "FS overshoots FPS" true (q "safe" fs_metrics < -10.)

let test_emergency_phase_all_adapt () =
  (* Phase 2: everyone keeps QoS near the reference under the reduced
     envelope. *)
  List.iter
    (fun (name, m) ->
      let q = Metrics.qos_of (Lazy.force m) "emergency" in
      check_bool (name ^ " maintains QoS in emergency") true (q < 12.))
    [
      ("SPECTR", spectr_metrics);
      ("MM-Pow", mm_pow_metrics);
      ("MM-Perf", mm_perf_metrics);
      ("FS", fs_metrics);
    ]

let test_emergency_spectr_fast_compliance () =
  (* §5.1.1: SPECTR responds faster than FS to the envelope drop. *)
  let comply m =
    match
      (List.find
         (fun pm -> pm.Metrics.phase_name = "emergency")
         (Lazy.force m))
        .Metrics.compliance_time_s
    with
    | Some t -> t
    | None -> infinity
  in
  check_bool "SPECTR compliant quickly" true (comply spectr_metrics < 0.5);
  check_bool "SPECTR faster than FS" true
    (comply spectr_metrics < comply fs_metrics)

let test_disturbance_phase () =
  (* Phase 3: the reference is unachievable within TDP.  MM-Perf gets the
     highest QoS but violates the TDP; SPECTR and MM-Pow/FS obey it. *)
  let q name m = Metrics.qos_of (Lazy.force m) name in
  let p name m = Metrics.power_of (Lazy.force m) name in
  check_bool "MM-Perf best QoS" true
    (q "disturbance" mm_perf_metrics <= q "disturbance" spectr_metrics
    && q "disturbance" mm_perf_metrics <= q "disturbance" mm_pow_metrics);
  check_bool "MM-Perf violates TDP" true (p "disturbance" mm_perf_metrics < -5.);
  check_bool "SPECTR obeys TDP" true (p "disturbance" spectr_metrics > -2.);
  check_bool "MM-Pow at the limit" true
    (abs_float (p "disturbance" mm_pow_metrics) < 5.);
  check_bool "everyone degrades QoS" true (q "disturbance" spectr_metrics > 5.)

let test_spectr_adapts_priorities () =
  (* The signature SPECTR property (autonomy): efficient like MM-Perf in
     the safe phase, TDP-respecting like MM-Pow under disturbance. *)
  let p name m = Metrics.power_of (Lazy.force m) name in
  check_bool "safe: efficient" true
    (p "safe" spectr_metrics > p "safe" mm_pow_metrics +. 20.);
  check_bool "disturbance: compliant" true
    (p "disturbance" spectr_metrics > p "disturbance" mm_perf_metrics +. 5.)

let test_spectr_energy_efficiency () =
  (* Goal i) of §4.2: meet QoS while minimizing energy.  In the safe
     phase SPECTR must deliver its QoS work at lower energy per
     heartbeat than the budget-burning MM-Pow. *)
  let eff m =
    (List.find
       (fun pm -> pm.Metrics.phase_name = "safe")
       (Lazy.force m))
      .Metrics.energy_per_heartbeat_j
  in
  check_bool "SPECTR cheaper per heartbeat than MM-Pow" true
    (eff spectr_metrics < eff mm_pow_metrics)

let test_gain_scheduling_ablation () =
  (* Without gain scheduling the supervisor can still re-budget, but the
     emergency reaction loses its mode switch; the system must still run
     (no crash) and remain TDP-compliant on average. *)
  let mgr, _ = Spectr_manager.make ~gain_scheduling:false () in
  let metrics = metrics_of mgr in
  check_bool "still controls QoS in safe phase" true
    (Metrics.qos_of metrics "safe" < 15.)

let test_supervisor_divisor_validation () =
  Alcotest.check_raises "divisor"
    (Invalid_argument "Spectr_manager.make: supervisor_divisor < 1") (fun () ->
      ignore (Spectr_manager.make ~supervisor_divisor:0 ()))

(* ------------------------------------------------------------------ *)
(* Other benchmarks smoke: SPECTR completes and stays TDP-compliant     *)
(* ------------------------------------------------------------------ *)

let test_thermal_governor () =
  let gov =
    Thermal_governor.create ~trip_c:70. ~release_c:62. ~tdp:5.0
      ~emergency_envelope:3.5 ()
  in
  check_float "cool -> TDP" 5.0 (Thermal_governor.envelope gov ~temperature_c:50.);
  check_bool "not tripped" false (Thermal_governor.tripped gov);
  check_float "hot -> emergency" 3.5
    (Thermal_governor.envelope gov ~temperature_c:71.);
  (* hysteresis: between release and trip it stays tripped *)
  check_float "hysteresis holds" 3.5
    (Thermal_governor.envelope gov ~temperature_c:65.);
  check_float "releases below 62" 5.0
    (Thermal_governor.envelope gov ~temperature_c:60.);
  check_bool "released" false (Thermal_governor.tripped gov)

let test_thermal_governor_validation () =
  Alcotest.check_raises "ordering"
    (Invalid_argument "Thermal_governor.create: release_c >= trip_c") (fun () ->
      ignore
        (Thermal_governor.create ~trip_c:60. ~release_c:60. ~tdp:5.
           ~emergency_envelope:3. ()));
  Alcotest.check_raises "envelope"
    (Invalid_argument "Thermal_governor.create: emergency envelope >= TDP")
    (fun () ->
      ignore (Thermal_governor.create ~tdp:5. ~emergency_envelope:5. ()))

(* Hysteresis boundaries are strict comparisons: a reading exactly at
   [trip_c] does not trip (the thermostat trips strictly above), and a
   tripped governor reading exactly [release_c] stays tripped (release
   is strictly below).  Pinning the boundary semantics keeps the
   governor's behaviour stable under sensor quantization that lands
   samples exactly on the thresholds. *)
let test_thermal_governor_boundaries () =
  let gov =
    Thermal_governor.create ~trip_c:70. ~release_c:62. ~tdp:5.0
      ~emergency_envelope:3.5 ()
  in
  check_float "exactly at trip stays nominal" 5.0
    (Thermal_governor.envelope gov ~temperature_c:70.);
  check_bool "not tripped at trip_c" false (Thermal_governor.tripped gov);
  check_float "epsilon above trips" 3.5
    (Thermal_governor.envelope gov ~temperature_c:70.0000001);
  check_bool "tripped" true (Thermal_governor.tripped gov);
  check_float "exactly at release stays tripped" 3.5
    (Thermal_governor.envelope gov ~temperature_c:62.);
  check_bool "still tripped at release_c" true (Thermal_governor.tripped gov);
  check_float "epsilon below releases" 5.0
    (Thermal_governor.envelope gov ~temperature_c:61.9999999);
  check_bool "released" false (Thermal_governor.tripped gov);
  (* State updates before the envelope is produced, so the very sample
     that crosses a threshold already yields the new envelope — no
     one-sample lag on either edge. *)
  check_float "crossing sample already emergency" 3.5
    (Thermal_governor.envelope gov ~temperature_c:80.)

(* Interaction with reconfiguration: a degraded description has a
   smaller peak power, so the emergency envelope must be re-derived —
   the healthy platform's emergency envelope can sit at or above the
   degraded plant's whole thermal design power, where the governor
   rightly refuses it (an "emergency" cap that caps nothing is a config
   bug).  Scaling the envelope by the degraded/healthy capacity ratio —
   exactly how the fleet layer reports degraded capacity — always
   yields a valid governor. *)
let test_thermal_governor_degraded_envelope () =
  let healthy = Platform_desc.exynos5422 in
  let degraded = Platform_desc.degrade healthy (Platform_desc.Remove_cluster 1) in
  let full = Platform_desc.max_power_estimate healthy in
  let reduced = Platform_desc.max_power_estimate degraded in
  check_bool "degraded peak strictly smaller" true (reduced < full);
  (* A mild healthy emergency envelope (90 % of peak — losing the
     little cluster only costs ~12 % of exynos5422's budget) already
     exceeds the degraded peak. *)
  let healthy_emergency = 0.9 *. full in
  check_bool "healthy emergency envelope exceeds degraded TDP" true
    (healthy_emergency >= reduced);
  Alcotest.check_raises "stale envelope rejected on degraded platform"
    (Invalid_argument "Thermal_governor.create: emergency envelope >= TDP")
    (fun () ->
      ignore
        (Thermal_governor.create ~tdp:reduced
           ~emergency_envelope:healthy_emergency ()));
  (* Re-derived by capacity ratio: valid, and the governor enforces the
     smaller envelope through a trip/release cycle. *)
  let scaled = healthy_emergency *. (reduced /. full) in
  let gov =
    Thermal_governor.create ~tdp:reduced ~emergency_envelope:scaled ()
  in
  check_float "degraded TDP when cool" reduced
    (Thermal_governor.envelope gov ~temperature_c:50.);
  check_float "degraded emergency when hot" scaled
    (Thermal_governor.envelope gov ~temperature_c:75.);
  check_bool "scaled envelope below degraded TDP" true (scaled < reduced);
  check_float "releases to degraded TDP" reduced
    (Thermal_governor.envelope gov ~temperature_c:55.)

let test_closed_thermal_loop () =
  (* End-to-end: a hot QoS demand under the governor; SPECTR must keep
     the die from running away (bounded temperature) while still doing
     useful work. *)
  let mgr, _ = Spectr_manager.make () in
  let gov = Thermal_governor.create ~trip_c:63. ~release_c:56. ~tdp:5.0
      ~emergency_envelope:3.2 () in
  let soc = Soc.create ~qos:Benchmarks.x264 () in
  let qos_ref = 0.95 *. Perf_model.max_qos_rate Benchmarks.x264 in
  let max_temp = ref 0. in
  for _ = 1 to 400 do
    let obs = Soc.step soc ~dt:0.05 in
    let envelope =
      Thermal_governor.envelope gov ~temperature_c:obs.Soc.temperature_c
    in
    max_temp := Float.max !max_temp (Soc.temperature soc);
    mgr.Manager.step ~now:obs.Soc.time ~qos_ref ~envelope ~obs soc
  done;
  check_bool "temperature bounded" true (!max_temp < 72.);
  check_bool "still doing work" true (Soc.true_qos_rate soc > 30.)

let test_siso_baseline () =
  (* Row C of Table 1: independent SISO loops.  They must control the
     system (meet QoS when feasible) but, lacking coordination, end up
     in energy-suboptimal configurations — here, strictly less
     power-efficient than SPECTR in the safe phase is NOT guaranteed,
     but they must at least track QoS and stay sane. *)
  let metrics = metrics_of (Siso.make ()) in
  check_bool "meets QoS in safe phase" true (Metrics.qos_of metrics "safe" < 10.);
  List.iter
    (fun pm ->
      check_bool (pm.Metrics.phase_name ^ " finite") true
        (Float.is_finite pm.Metrics.qos_error_pct
        && Float.is_finite pm.Metrics.power_error_pct))
    metrics

let test_other_benchmarks_run () =
  List.iter
    (fun w ->
      let cfg = Scenario.default_config w in
      let mgr, _ = Spectr_manager.make () in
      let trace = Scenario.run ~manager:mgr cfg in
      let metrics = Metrics.per_phase ~trace ~config:cfg in
      (* sane output everywhere *)
      List.iter
        (fun pm ->
          check_bool
            (w.Workload.name ^ "/" ^ pm.Metrics.phase_name ^ " finite")
            true
            (Float.is_finite pm.Metrics.qos_error_pct
            && Float.is_finite pm.Metrics.power_error_pct))
        metrics)
    [ Benchmarks.streamcluster; Benchmarks.canneal ]

(* ------------------------------------------------------------------ *)
(* Synthesis fixpoint details                                          *)
(* ------------------------------------------------------------------ *)

let test_synthesis_stats_pinned () =
  (* The worklist rewrite of the uncontrollable pass must leave the
     case-study synthesis bit-for-bit unchanged; these are the numbers
     the original full-rescan implementation produced. *)
  let _, stats = Supervisor.synthesize () in
  check_int "product states" 27 stats.Synthesis.product_states;
  check_int "forbidden" 6 stats.Synthesis.removed_forbidden;
  check_int "uncontrollable" 0 stats.Synthesis.removed_uncontrollable;
  check_int "blocking" 0 stats.Synthesis.removed_blocking;
  check_int "iterations" 1 stats.Synthesis.iterations

let test_supervisor_pinned_fixture () =
  (* The exact pre-refactor case-study supervisor, dumped transition by
     transition before the index-native rewrite of the automata core.
     The refactored compose/supcon pipeline must reproduce it up to
     state renumbering — [isomorphic] also compares alphabets (with
     controllability), marking and forbidden sets — and the state
     *names* must survive unchanged too, since downstream trace logs
     key on them. *)
  let c = Event.controllable and u = Event.uncontrollable in
  let fixture =
    Automaton.create
      ~marked:[ "Eval\\.Safe.Uncapped" ]
      ~name:"sup(QoSManagement||PowerCapping,ThreeBandCapping)"
      ~initial:"Eval\\.Safe.Uncapped"
      ~transitions:
        [
          ("Eval\\.Safe.Uncapped", u "QoSmet", "Lower\\.Safe.Uncapped");
          ("Eval\\.Safe.Uncapped", u "QoSnotMet", "Raise\\.Safe.Uncapped");
          ("Eval\\.Safe.Uncapped", u "aboveTarget", "Eval\\.Watch.Uncapped");
          ("Eval\\.Safe.Uncapped", u "belowTarget", "Eval\\.Safe.Uncapped");
          ("Eval\\.Safe.Uncapped", u "critical", "Eval\\.Emergency.C1");
          ("Eval\\.Safe.Uncapped", u "powerSafeQoSMet", "Lower\\.Safe.Uncapped");
          ("Eval\\.Safe.Uncapped", u "powerSafeQoSNotMet", "Raise\\.Safe.Uncapped");
          ("Eval\\.Safe.Uncapped", u "safePower", "Eval\\.Safe.Uncapped");
          ("Lower\\.Watch.Uncapped", c "controlPower", "Lower\\.Safe.Uncapped");
          ("Lower\\.Watch.Uncapped", u "critical", "Lower\\.Emergency.C1");
          ("Lower\\.Watch.Uncapped", c "decreaseBigPower", "Eval\\.Watch.Uncapped");
          ("Lower\\.Watch.Uncapped", c "decreaseLittlePower", "Eval\\.Watch.Uncapped");
          ("Lower\\.Watch.Uncapped", c "holdBudget", "Eval\\.Watch.Uncapped");
          ("Eval\\.Watch.Uncapped", u "QoSmet", "Lower\\.Watch.Uncapped");
          ("Eval\\.Watch.Uncapped", u "QoSnotMet", "Raise\\.Watch.Uncapped");
          ("Eval\\.Watch.Uncapped", c "controlPower", "Eval\\.Safe.Uncapped");
          ("Eval\\.Watch.Uncapped", u "critical", "Eval\\.Emergency.C1");
          ("Eval\\.Watch.Uncapped", u "powerSafeQoSMet", "Lower\\.Watch.Uncapped");
          ("Eval\\.Watch.Uncapped", u "powerSafeQoSNotMet", "Raise\\.Watch.Uncapped");
          ("Lower\\.Emergency.C1", c "holdBudget", "Eval\\.Emergency.C1");
          ("Lower\\.Emergency.C1", c "switchPower", "Lower\\.Capped.Capped");
          ("Lower\\.Safe.Uncapped", u "aboveTarget", "Lower\\.Watch.Uncapped");
          ("Lower\\.Safe.Uncapped", u "belowTarget", "Lower\\.Safe.Uncapped");
          ("Lower\\.Safe.Uncapped", u "critical", "Lower\\.Emergency.C1");
          ("Lower\\.Safe.Uncapped", c "decreaseBigPower", "Eval\\.Safe.Uncapped");
          ("Lower\\.Safe.Uncapped", c "decreaseLittlePower", "Eval\\.Safe.Uncapped");
          ("Lower\\.Safe.Uncapped", c "holdBudget", "Eval\\.Safe.Uncapped");
          ("Lower\\.Safe.Uncapped", u "safePower", "Lower\\.Safe.Uncapped");
          ("Lower\\.Capped.Capped", u "aboveTarget", "Lower\\.Capped.Capped");
          ("Lower\\.Capped.Capped", u "critical", "Lower\\.StillHot.CapHot");
          ("Lower\\.Capped.Capped", c "decreaseBigPower", "Eval\\.Capped.Capped");
          ("Lower\\.Capped.Capped", c "decreaseLittlePower", "Eval\\.Capped.Capped");
          ("Lower\\.Capped.Capped", c "holdBudget", "Eval\\.Capped.Capped");
          ("Lower\\.Capped.Capped", u "safePower", "Lower\\.Restore.CapSafe");
          ("Eval\\.Emergency.C1", u "QoSmet", "Lower\\.Emergency.C1");
          ("Eval\\.Emergency.C1", u "QoSnotMet", "Raise\\.Emergency.C1");
          ("Eval\\.Emergency.C1", u "powerSafeQoSMet", "Lower\\.Emergency.C1");
          ("Eval\\.Emergency.C1", u "powerSafeQoSNotMet", "Raise\\.Emergency.C1");
          ("Eval\\.Emergency.C1", c "switchPower", "Eval\\.Capped.Capped");
          ("Raise\\.Watch.Uncapped", c "controlPower", "Raise\\.Safe.Uncapped");
          ("Raise\\.Watch.Uncapped", u "critical", "Raise\\.Emergency.C1");
          ("Raise\\.Watch.Uncapped", c "holdBudget", "Eval\\.Watch.Uncapped");
          ("Raise\\.Watch.Uncapped", c "increaseBigPower", "Eval\\.Watch.Uncapped");
          ("Raise\\.Watch.Uncapped", c "increaseLittlePower", "Eval\\.Watch.Uncapped");
          ("Raise\\.Emergency.C1", c "holdBudget", "Eval\\.Emergency.C1");
          ("Raise\\.Emergency.C1", c "switchPower", "Raise\\.Capped.Capped");
          ("Raise\\.Safe.Uncapped", u "aboveTarget", "Raise\\.Watch.Uncapped");
          ("Raise\\.Safe.Uncapped", u "belowTarget", "Raise\\.Safe.Uncapped");
          ("Raise\\.Safe.Uncapped", u "critical", "Raise\\.Emergency.C1");
          ("Raise\\.Safe.Uncapped", c "holdBudget", "Eval\\.Safe.Uncapped");
          ("Raise\\.Safe.Uncapped", c "increaseBigPower", "Eval\\.Safe.Uncapped");
          ("Raise\\.Safe.Uncapped", c "increaseLittlePower", "Eval\\.Safe.Uncapped");
          ("Raise\\.Safe.Uncapped", u "safePower", "Raise\\.Safe.Uncapped");
          ("Eval\\.Capped.Capped", u "QoSmet", "Lower\\.Capped.Capped");
          ("Eval\\.Capped.Capped", u "QoSnotMet", "Raise\\.Capped.Capped");
          ("Eval\\.Capped.Capped", u "aboveTarget", "Eval\\.Capped.Capped");
          ("Eval\\.Capped.Capped", u "critical", "Eval\\.StillHot.CapHot");
          ("Eval\\.Capped.Capped", u "powerSafeQoSMet", "Lower\\.Capped.Capped");
          ("Eval\\.Capped.Capped", u "powerSafeQoSNotMet", "Raise\\.Capped.Capped");
          ("Eval\\.Capped.Capped", u "safePower", "Eval\\.Restore.CapSafe");
          ("Raise\\.Capped.Capped", u "aboveTarget", "Raise\\.Capped.Capped");
          ("Raise\\.Capped.Capped", u "critical", "Raise\\.StillHot.CapHot");
          ("Raise\\.Capped.Capped", c "holdBudget", "Eval\\.Capped.Capped");
          ("Raise\\.Capped.Capped", u "safePower", "Raise\\.Restore.CapSafe");
          ("Lower\\.Restore.CapSafe", c "holdBudget", "Eval\\.Restore.CapSafe");
          ("Lower\\.Restore.CapSafe", c "switchQoS", "Lower\\.Safe.Uncapped");
          ("Lower\\.StillHot.CapHot", c "decreaseCriticalPower", "Lower\\.Cooling.Capped");
          ("Lower\\.StillHot.CapHot", c "holdBudget", "Eval\\.StillHot.CapHot");
          ("Eval\\.Restore.CapSafe", u "QoSmet", "Lower\\.Restore.CapSafe");
          ("Eval\\.Restore.CapSafe", u "QoSnotMet", "Raise\\.Restore.CapSafe");
          ("Eval\\.Restore.CapSafe", u "powerSafeQoSMet", "Lower\\.Restore.CapSafe");
          ("Eval\\.Restore.CapSafe", u "powerSafeQoSNotMet", "Raise\\.Restore.CapSafe");
          ("Eval\\.Restore.CapSafe", c "switchQoS", "Eval\\.Safe.Uncapped");
          ("Eval\\.StillHot.CapHot", u "QoSmet", "Lower\\.StillHot.CapHot");
          ("Eval\\.StillHot.CapHot", u "QoSnotMet", "Raise\\.StillHot.CapHot");
          ("Eval\\.StillHot.CapHot", c "decreaseCriticalPower", "Eval\\.Cooling.Capped");
          ("Eval\\.StillHot.CapHot", u "powerSafeQoSMet", "Lower\\.StillHot.CapHot");
          ("Eval\\.StillHot.CapHot", u "powerSafeQoSNotMet", "Raise\\.StillHot.CapHot");
          ("Raise\\.Restore.CapSafe", c "holdBudget", "Eval\\.Restore.CapSafe");
          ("Raise\\.Restore.CapSafe", c "switchQoS", "Raise\\.Safe.Uncapped");
          ("Raise\\.StillHot.CapHot", c "decreaseCriticalPower", "Raise\\.Cooling.Capped");
          ("Raise\\.StillHot.CapHot", c "holdBudget", "Eval\\.StillHot.CapHot");
          ("Lower\\.Cooling.Capped", u "aboveTarget", "Lower\\.Cooling.Capped");
          ("Lower\\.Cooling.Capped", c "decreaseBigPower", "Eval\\.Cooling.Capped");
          ("Lower\\.Cooling.Capped", c "decreaseLittlePower", "Eval\\.Cooling.Capped");
          ("Lower\\.Cooling.Capped", c "holdBudget", "Eval\\.Cooling.Capped");
          ("Lower\\.Cooling.Capped", u "safePower", "Lower\\.Restore.CapSafe");
          ("Eval\\.Cooling.Capped", u "QoSmet", "Lower\\.Cooling.Capped");
          ("Eval\\.Cooling.Capped", u "QoSnotMet", "Raise\\.Cooling.Capped");
          ("Eval\\.Cooling.Capped", u "aboveTarget", "Eval\\.Cooling.Capped");
          ("Eval\\.Cooling.Capped", u "powerSafeQoSMet", "Lower\\.Cooling.Capped");
          ("Eval\\.Cooling.Capped", u "powerSafeQoSNotMet", "Raise\\.Cooling.Capped");
          ("Eval\\.Cooling.Capped", u "safePower", "Eval\\.Restore.CapSafe");
          ("Raise\\.Cooling.Capped", u "aboveTarget", "Raise\\.Cooling.Capped");
          ("Raise\\.Cooling.Capped", c "holdBudget", "Eval\\.Cooling.Capped");
          ("Raise\\.Cooling.Capped", u "safePower", "Raise\\.Restore.CapSafe");
        ]
      ()
  in
  check_int "fixture states" 21 (Automaton.num_states fixture);
  check_int "fixture transitions" 96 (Automaton.num_transitions fixture);
  let sup, stats = Supervisor.synthesize () in
  check_int "states" 21 (Automaton.num_states sup);
  check_int "transitions" 96 (Automaton.num_transitions sup);
  check_string "initial name" "Eval\\.Safe.Uncapped" (Automaton.initial sup);
  check_bool "marked names" true
    (Automaton.marked sup = [ "Eval\\.Safe.Uncapped" ]);
  check_bool "state names preserved" true
    (List.sort String.compare (Automaton.states sup)
    = List.sort String.compare (Automaton.states fixture));
  check_bool "isomorphic to pre-refactor supervisor" true
    (Automaton.isomorphic sup fixture);
  check_int "product states" 27 stats.Synthesis.product_states

let test_synthesis_uncontrollable_worklist () =
  (* The case-study models never exercise uncontrollable pruning, so
     build a plant where they do: S0 -go1-> S1a -tick!-> S1 -boom!-> S2,
     plus a safe S0 -go2-> S3.  The spec disables boom outright, so
     (S1) is uncontrollably unsafe and the badness must propagate back
     over tick! to S1a via the worklist; the supervisor can only cut the
     controllable go1. *)
  let go1 = Event.controllable "go1" in
  let go2 = Event.controllable "go2" in
  let tick = Event.uncontrollable "tick" in
  let boom = Event.uncontrollable "boom" in
  let plant =
    Automaton.create ~name:"plant" ~initial:"S0"
      ~marked:[ "S0"; "S3" ]
      ~transitions:
        [
          ("S0", go1, "S1a");
          ("S1a", tick, "S1");
          ("S1", boom, "S2");
          ("S0", go2, "S3");
        ]
      ()
  in
  let spec =
    Automaton.create ~name:"spec" ~initial:"P0" ~marked:[ "P0" ]
      ~alphabet:[ go1; go2; tick; boom ]
      ~transitions:
        [ ("P0", go1, "P0"); ("P0", go2, "P0"); ("P0", tick, "P0") ]
      ()
  in
  match Synthesis.supcon ~plant ~spec with
  | Error _ -> Alcotest.fail "supervisor must be nonempty"
  | Ok (sup, stats) ->
      check_int "reachable product" 4 stats.Synthesis.product_states;
      check_int "uncontrollable removed" 2
        stats.Synthesis.removed_uncontrollable;
      check_bool "go1 pruned" false
        (List.exists (Event.equal go1)
           (Automaton.enabled sup (Automaton.initial sup)));
      check_bool "go2 kept" true
        (List.exists (Event.equal go2)
           (Automaton.enabled sup (Automaton.initial sup)));
      check_bool "still controllable" true
        (Verify.is_controllable ~plant ~supervisor:sup);
      check_bool "still nonblocking" true (Verify.is_nonblocking sup)

(* ------------------------------------------------------------------ *)
(* Guarded degradation layer                                           *)
(* ------------------------------------------------------------------ *)

(* Alternating healthy readings: live sensors are noisy, so identical
   streaks would (correctly) trip the stuck detector. *)
let healthy_step g ~now i =
  let wiggle = if i mod 2 = 0 then 0. else 0.11 in
  Guarded.filter g ~now ~qos:(60. +. wiggle) ~powers:[| 2. +. wiggle; 1. +. wiggle |]

let warmed_guards () =
  let g = Guarded.create () in
  for i = 1 to 5 do
    ignore (healthy_step g ~now:(float_of_int i *. 0.05) i)
  done;
  g

let test_guarded_filter_never_nonfinite () =
  let g = warmed_guards () in
  let garbage = [ nan; infinity; neg_infinity; -3.; 1e12; 0. ] in
  List.iteri
    (fun i v ->
      let f =
        Guarded.filter g
          ~now:(0.3 +. (float_of_int i *. 0.05))
          ~qos:v ~powers:[| v; v |]
      in
      check_bool "qos finite" true (Float.is_finite f.Guarded.qos);
      check_bool "big finite" true (Float.is_finite f.Guarded.powers.(0));
      check_bool "little finite" true (Float.is_finite f.Guarded.powers.(1));
      check_bool "flagged unhealthy" false f.Guarded.healthy)
    garbage

let test_guarded_watchdog_trip_and_recover () =
  let g = warmed_guards () in
  let cfg = Guarded.default_config in
  (* Persistent sensor loss: dead QoS line (0 is below the plausible
     floor).  The watchdog must trip after trip_count periods... *)
  for i = 1 to cfg.Guarded.trip_count do
    let now = 0.25 +. (float_of_int i *. 0.05) in
    ignore (Guarded.filter g ~now ~qos:0. ~powers:[| 2.; 1. |])
  done;
  check_bool "degraded after persistent loss" true (Guarded.degraded g);
  (* ... and hand control back only after recover_count healthy ones. *)
  for i = 1 to cfg.Guarded.recover_count do
    let now = 1. +. (float_of_int i *. 0.05) in
    ignore (healthy_step g ~now i)
  done;
  check_bool "recovered" false (Guarded.degraded g);
  match Guarded.recovery_times g with
  | [ t ] ->
      check_bool "finite recovery time" true (Float.is_finite t && t > 0.)
  | l -> Alcotest.failf "expected one completed span, got %d" (List.length l)

(* After a fallback and a clean recovery the watchdog must be re-armed:
   a second fault in the same run trips it again with the same
   trip_count latency, and both spans are accounted.  (A watchdog that
   only fires once would pass every single-fault test and still be
   useless in a soak.) *)
let test_guarded_watchdog_rearms () =
  let g = warmed_guards () in
  let cfg = Guarded.default_config in
  let now = ref 0.25 in
  let advance () =
    now := !now +. 0.05;
    !now
  in
  let dead_qos_until_tripped () =
    let n = ref 0 in
    while (not (Guarded.degraded g)) && !n < 4 * cfg.Guarded.trip_count do
      incr n;
      ignore
        (Guarded.filter g ~now:(advance ()) ~qos:0. ~powers:[| 2.; 1. |])
    done;
    check_bool "tripped" true (Guarded.degraded g)
  in
  let healthy_until_recovered () =
    let n = ref 0 in
    while Guarded.degraded g && !n < 4 * cfg.Guarded.recover_count do
      incr n;
      ignore (healthy_step g ~now:(advance ()) !n)
    done;
    check_bool "recovered" false (Guarded.degraded g)
  in
  dead_qos_until_tripped ();
  healthy_until_recovered ();
  (* Fault clears, run continues... a second, unrelated fault hits. *)
  dead_qos_until_tripped ();
  healthy_until_recovered ();
  (match Guarded.recovery_times g with
  | [ t1; t2 ] ->
      check_bool "both spans finite" true
        (Float.is_finite t1 && Float.is_finite t2 && t1 > 0. && t2 > 0.)
  | l -> Alcotest.failf "expected two completed spans, got %d" (List.length l));
  check_bool "no open span left" true
    (List.for_all
       (fun (_, exited) -> exited <> None)
       (Guarded.degradation_spans g))

let test_guarded_spike_vs_level_shift () =
  let g = warmed_guards () in
  (* One outlier spike on the Big power sensor: substituted, and the
     spiked value itself must never come back out of the filter. *)
  let f =
    Guarded.filter g ~now:0.3 ~qos:60. ~powers:[| 9.5; 1. |]
  in
  check_bool "spike rejected" false f.Guarded.healthy;
  check_bool "substitute near last good" true
    (Float.abs (f.Guarded.powers.(0) -. 2.) < 0.5);
  (* A genuine level shift persists and must eventually be accepted
     without tripping the watchdog. *)
  let accepted = ref 0. in
  for i = 1 to 8 do
    let wiggle = if i mod 2 = 0 then 0. else 0.11 in
    let f =
      Guarded.filter g
        ~now:(0.3 +. (float_of_int i *. 0.05))
        ~qos:(60. +. wiggle)
        ~powers:[| 6. +. wiggle; 1. +. wiggle |]
    in
    accepted := f.Guarded.powers.(0)
  done;
  check_bool "level shift accepted" true (Float.abs (!accepted -. 6.) < 0.5);
  check_bool "no degradation for a shift" false (Guarded.degraded g)

let test_guarded_stuck_sensor () =
  let g = warmed_guards () in
  let cfg = Guarded.default_config in
  let last = ref true in
  for i = 1 to cfg.Guarded.qos.Guarded.stuck_count + 2 do
    let wiggle = if i mod 2 = 0 then 0. else 0.11 in
    (* QoS frozen bit-identically; power keeps wiggling. *)
    let f =
      Guarded.filter g
        ~now:(0.25 +. (float_of_int i *. 0.05))
        ~qos:57.25
        ~powers:[| 2. +. wiggle; 1. +. wiggle |]
    in
    last := f.Guarded.healthy
  done;
  check_bool "frozen streak flagged" false !last

let test_guarded_actuator_watchdog () =
  let g = warmed_guards () in
  let cfg = Guarded.default_config in
  for i = 1 to cfg.Guarded.trip_count do
    Guarded.note_actuation g ~now:(float_of_int i *. 0.05) ~ok:false
  done;
  check_bool "actuator disobedience trips" true (Guarded.degraded g)

(* ------------------------------------------------------------------ *)
(* Actuation-path sanitization                                         *)
(* ------------------------------------------------------------------ *)

let test_manager_sanitize () =
  check_float "nan freq -> min OPP" 200.
    (Manager.sanitize_freq_mhz Opp.big nan);
  check_float "+inf freq -> max OPP" 2000.
    (Manager.sanitize_freq_mhz Opp.big infinity);
  check_float "-inf freq -> min OPP" 200.
    (Manager.sanitize_freq_mhz Opp.big neg_infinity);
  check_float "negative freq -> min OPP" 200.
    (Manager.sanitize_freq_mhz Opp.big (-0.4 *. 1000.));
  check_float "finite passes through" 1234.
    (Manager.sanitize_freq_mhz Opp.big 1.234);
  check_int "nan cores -> 1" 1 (Manager.sanitize_cores nan);
  check_int "+inf cores -> 4" 4 (Manager.sanitize_cores infinity);
  check_int "-inf cores -> 1" 1 (Manager.sanitize_cores neg_infinity);
  check_int "clamp high" 4 (Manager.sanitize_cores 9.);
  check_int "clamp low" 1 (Manager.sanitize_cores (-2.));
  check_int "round" 3 (Manager.sanitize_cores 2.6)

let test_manager_apply_cluster () =
  let soc = Soc.create ~qos:Benchmarks.x264 () in
  let a = Manager.apply_cluster soc 0 ~freq_ghz:1.26 ~cores:2.4 in
  check_int "quantized OPP returned" 1300 a.Manager.freq_mhz;
  check_int "rounded cores returned" 2 a.Manager.cores;
  check_int "applied to the platform" 1300 (Soc.frequency soc 0);
  (* NaN commands must land on the conservative end, not on
     int_of_float garbage. *)
  let b = Manager.apply_cluster soc 0 ~freq_ghz:nan ~cores:nan in
  check_int "nan freq -> min OPP" 200 b.Manager.freq_mhz;
  check_int "nan cores -> 1" 1 b.Manager.cores

let test_supervisor_nonfinite_guard () =
  let _, commands = make_mock () in
  let sup = Supervisor.create ~commands ~envelope:5.0 () in
  Supervisor.step sup ~qos:60. ~qos_ref:60. ~power:3.0 ~envelope:5.0;
  let state = Supervisor.state sup in
  (* A NaN sample must not poison the band logic (every NaN comparison
     is false, which used to hold state forever). *)
  Supervisor.step sup ~qos:nan ~qos_ref:60. ~power:nan ~envelope:5.0;
  check_string "nan sample dropped" state (Supervisor.state sup);
  check_bool "budgets stay finite" true
    (Float.is_finite (Supervisor.power_ref sup 0)
    && Float.is_finite (Supervisor.power_ref sup 1));
  (* and the supervisor must still react to the next real sample *)
  Supervisor.step sup ~qos:60. ~qos_ref:60. ~power:5.5 ~envelope:5.0;
  check_string "still responsive" "power" (Supervisor.gains_mode sup)

(* ------------------------------------------------------------------ *)
(* End-to-end fault scenarios                                          *)
(* ------------------------------------------------------------------ *)

let faulted_cfg fault ~start_s ~stop_s =
  let phase name ~duration_s ~envelope ~background_tasks ~faults =
    {
      Scenario.phase_name = name;
      duration_s;
      envelope;
      background_tasks;
      phase_faults = faults;
    }
  in
  {
    (Scenario.default_config Benchmarks.x264) with
    Scenario.phases =
      [
        phase "safe" ~duration_s:3. ~envelope:5.0 ~background_tasks:0
          ~faults:[ Faults.injection fault ~start_s ~stop_s ];
        phase "stress" ~duration_s:4. ~envelope:3.5 ~background_tasks:16
          ~faults:[];
        phase "recovery" ~duration_s:5. ~envelope:5.0 ~background_tasks:0
          ~faults:[];
      ];
  }

let run_guarded fault ~start_s ~stop_s =
  let cfg = faulted_cfg fault ~start_s ~stop_s in
  let guards = Guarded.create () in
  let manager, _ = Spectr_manager.make ~guards () in
  (Scenario.run ~manager cfg, guards)

let check_guarded_rides_out fault ~start_s ~stop_s =
  let trace, guards = run_guarded fault ~start_s ~stop_s in
  let time = Trace.column trace "time" in
  let true_power = Trace.column trace "true_power" in
  let envelope = Trace.column trace "envelope" in
  (* The watchdog must have tripped... *)
  let spans = Guarded.degradation_spans guards in
  check_bool "watchdog engaged" true (spans <> []);
  let entered, exited = List.hd spans in
  (* ... and once engaged, the open-loop fallback keeps true power under
     the envelope (0.3 s of grace for the platform to settle). *)
  let fault_stop = Float.min stop_s (match exited with Some t -> t | None -> infinity) in
  Array.iteri
    (fun i t ->
      if t >= entered +. 0.3 && t < fault_stop then
        check_bool
          (Printf.sprintf "power %.2f <= envelope %.2f at t=%.2f"
             true_power.(i) envelope.(i) t)
          true
          (true_power.(i) <= envelope.(i) *. 1.05))
    time;
  (* Control is handed back after the fault clears, in finite time. *)
  (match exited with
  | Some t ->
      check_bool "handed back after clearance" true (t > entered)
  | None -> Alcotest.fail "never recovered from degradation");
  (* And the run as a whole re-complies after clearance. *)
  let margin = Array.mapi (fun i p -> p -. (envelope.(i) *. 1.02)) true_power in
  let after = ref 0 in
  Array.iteri (fun i t -> if t < stop_s then after := i + 1) time;
  match Metrics.recovery_time ~envelope:0. ~dt:0.05 ~after:!after margin with
  | Some t -> check_bool "finite power recovery" true (Float.is_finite t)
  | None -> Alcotest.fail "power never re-complied"

let test_guarded_rides_out_power_dropout () =
  check_guarded_rides_out (Faults.Dropout Power) ~start_s:3.5 ~stop_s:6.5

let test_guarded_rides_out_heartbeat_stall () =
  check_guarded_rides_out Faults.Heartbeat_stall ~start_s:3.5 ~stop_s:6.5

let test_guarded_rides_out_stuck_dvfs () =
  check_guarded_rides_out Faults.Dvfs_stuck ~start_s:1.0 ~stop_s:6.5

let test_unguarded_spectr_fooled_by_dropout () =
  (* The contrast the robustness bench is built on: without the guards,
     a dead power sensor reads "infinite headroom" and SPECTR chases the
     unachievable QoS reference straight through the envelope. *)
  let cfg = faulted_cfg (Faults.Dropout Power) ~start_s:3.5 ~stop_s:6.5 in
  let manager, _ = Spectr_manager.make () in
  let trace = Scenario.run ~manager cfg in
  let time = Trace.column trace "time" in
  let true_power = Trace.column trace "true_power" in
  let envelope = Trace.column trace "envelope" in
  let excess = ref 0. in
  Array.iteri
    (fun i t ->
      if t >= 3.5 && true_power.(i) > envelope.(i) *. 1.05 then
        excess := !excess +. 0.05)
    time;
  check_bool "sustained violation while blind" true (!excess > 1.0)

let test_faulted_trace_columns () =
  let cfg = faulted_cfg (Faults.Dropout Power) ~start_s:3.5 ~stop_s:6.5 in
  let manager, _ = Spectr_manager.make () in
  let trace = Scenario.run ~manager cfg in
  check_bool "fault columns" true
    (Trace.columns trace = Scenario.fault_columns);
  let faults_col = Trace.column trace "faults" in
  let time = Trace.column trace "time" in
  Array.iteri
    (fun i t ->
      let expect = if t >= 3.5 && t < 6.5 then 1. else 0. in
      check_float (Printf.sprintf "active count at %.2f" t) expect
        faults_col.(i))
    time

let test_unfaulted_trace_unchanged () =
  (* No schedule -> no faults machinery, no extra columns: the paper
     scenarios reproduce exactly as before this layer existed. *)
  let cfg = Scenario.default_config Benchmarks.x264 in
  let manager, _ = Spectr_manager.make () in
  let trace = Scenario.run ~manager cfg in
  check_bool "base columns only" true (Trace.columns trace = Scenario.columns)

(* ------------------------------------------------------------------ *)
(* Recovery metrics                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_recovery_time () =
  let power = [| 6.; 6.; 6.; 4.; 6.; 4.; 4.; 4. |] in
  (match Metrics.recovery_time ~envelope:5. ~dt:0.1 ~after:2 power with
  | Some t -> check_float "after last violation" 0.3 t
  | None -> Alcotest.fail "recovers");
  check_bool "never recovers" true
    (Metrics.recovery_time ~envelope:5. ~dt:0.1 ~after:0 [| 6.; 6. |] = None);
  check_bool "empty tail" true
    (Metrics.recovery_time ~envelope:5. ~dt:0.1 ~after:9 power = None)

let test_metrics_reconvergence_time () =
  let qos = [| 60.; 20.; 20.; 58.; 61.; 60. |] in
  match
    Metrics.reconvergence_time ~reference:60. ~band:0.1 ~dt:0.1 ~after:1 qos
  with
  | Some t -> check_float "first sustained re-entry" 0.2 t
  | None -> Alcotest.fail "reconverges"

let test_metrics_empty_phase () =
  (* Regression: a phase shorter than half a controller period records
     zero samples; per_phase used to divide by its empty sample range.
     Such phases must simply be omitted. *)
  let cfg = Scenario.default_config Benchmarks.x264 in
  let template = List.hd cfg.Scenario.phases in
  let phase name duration_s =
    { template with Scenario.phase_name = name; duration_s }
  in
  let cfg =
    {
      cfg with
      Scenario.phases = [ phase "lead" 0.5; phase "blink" 0.01; phase "tail" 0.5 ];
    }
  in
  (* 0.01 s < controller_period / 2 = 0.025 s: rounds to zero samples. *)
  check_bool "blink below half period" true
    (0.01 < (cfg.Scenario.controller_period /. 2.));
  let trace = Scenario.run ~manager:(Mm.make_pow ()) cfg in
  let metrics = Metrics.per_phase ~trace ~config:cfg in
  check_int "zero-length phase omitted" 2 (List.length metrics);
  check_bool "surviving phases keep their order" true
    (List.map (fun m -> m.Metrics.phase_name) metrics = [ "lead"; "tail" ])

let test_metrics_envelope_step () =
  (* Regression: per_phase read the envelope once from the slice's first
     sample, so a phase whose envelope steps mid-phase (chaos fault
     windows, fleet cap re-budgets) judged every power metric against a
     stale cap.  Build a 10-sample phase whose envelope drops from 5 W
     to 3 W at sample 5 while power lags the drop by two samples. *)
  let dt = 0.05 in
  let cfg = Scenario.default_config Benchmarks.x264 in
  let template = List.hd cfg.Scenario.phases in
  let cfg =
    {
      cfg with
      Scenario.phases =
        [ { template with Scenario.phase_name = "step"; duration_s = 10. *. dt } ];
      controller_period = dt;
    }
  in
  let trace =
    Trace.create ~cap:10 ~columns:Scenario.columns ()
  in
  let ncols = List.length Scenario.columns in
  for i = 0 to 9 do
    let row = Array.make ncols 0. in
    row.(0) <- float_of_int i *. dt;
    row.(1) <- cfg.Scenario.qos_ref;
    row.(2) <- cfg.Scenario.qos_ref;
    row.(3) <- (if i < 7 then 4.9 else 2.9);
    row.(4) <- (if i < 5 then 5.0 else 3.0);
    Trace.add trace row
  done;
  let m = List.hd (Metrics.per_phase ~trace ~config:cfg) in
  (* Samples 5 and 6 hold 4.9 W against the stepped-down 3 W cap: the
     phase first sustains compliance at sample 7.  The old
     first-sample-envelope code saw no violation at all (4.9 <= 5.1)
     and reported Some 0. *)
  (match m.Metrics.compliance_time_s with
  | Some t -> check_float "compliance honors the mid-phase step" 0.35 t
  | None -> Alcotest.fail "phase complies after the two-sample lag");
  (* Tail = last 4 samples; per-tick references are all 3 W there, so
     the steady-state error is 100 * ((3-4.9)+3*(3-2.9))/4 / 3 = -40/3 %.
     The old code computed +32 % against the stale 5 W cap. *)
  check_bool "power error vs per-tick envelope" true
    (Float.abs (m.Metrics.power_error_pct -. (-40. /. 3.)) < 1e-6)

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

let test_metrics_find_diagnostics () =
  (* A bad phase name must not surface as a bare Not_found: the message
     names both the missing phase and the phases available. *)
  let phase name =
    {
      Metrics.phase_name = name;
      qos_error_pct = 0.;
      power_error_pct = 0.;
      power_settling_s = None;
      compliance_time_s = None;
      energy_j = 0.;
      energy_per_heartbeat_j = 0.;
    }
  in
  (match Metrics.qos_of [ phase "safe"; phase "emergency" ] "disturbance" with
  | exception Invalid_argument msg ->
      check_bool "names the missing phase" true (contains msg "disturbance");
      check_bool "lists available phases" true
        (contains msg "safe" && contains msg "emergency")
  | _ -> Alcotest.fail "raises Invalid_argument");
  match Metrics.power_of [] "any" with
  | exception Invalid_argument msg ->
      check_bool "empty list says none" true (contains msg "none")
  | _ -> Alcotest.fail "raises Invalid_argument on empty list"

let test_metrics_compliance_boundaries () =
  (* Never-violating slice: compliant from t = 0 exactly. *)
  check_bool "never violating -> Some 0." true
    (Metrics.compliance_time ~envelope:5. ~dt:0.1 [| 4.; 4.; 4. |] = Some 0.);
  (* Violation at the last sample: compliance is never sustained. *)
  check_bool "last-sample violation -> None" true
    (Metrics.compliance_time ~envelope:5. ~dt:0.1 [| 4.; 4.; 6. |] = None);
  (* The per-sample variant shares both boundary behaviours... *)
  check_bool "series: never violating -> Some 0." true
    (Metrics.compliance_time_series ~envelope:[| 5.; 5. |] ~dt:0.1 [| 4.; 4. |]
    = Some 0.);
  check_bool "series: last-sample violation -> None" true
    (Metrics.compliance_time_series ~envelope:[| 5.; 5. |] ~dt:0.1 [| 4.; 6. |]
    = None);
  (* ...and validates its shape. *)
  match
    Metrics.compliance_time_series ~envelope:[| 5. |] ~dt:0.1 [| 4.; 4. |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch raises"

let test_fault_schedule_order () =
  (* Regression: fault_schedule used a quadratic [acc @ ...] append that
     also made the output order an accident of the implementation.  The
     schedule must list injections in phase order, preserving each
     phase's own injection order, with windows shifted to absolute
     time. *)
  let cfg = Scenario.default_config Benchmarks.x264 in
  let template = List.hd cfg.Scenario.phases in
  let phase name duration_s faults =
    {
      template with
      Scenario.phase_name = name;
      duration_s;
      phase_faults = faults;
    }
  in
  let inj kind start_s stop_s = Faults.injection kind ~start_s ~stop_s in
  let cfg =
    {
      cfg with
      Scenario.phases =
        [
          phase "one" 1.0
            [
              inj (Faults.Dropout Faults.Power) 0.1 0.2;
              inj Faults.Dvfs_stuck 0.3 0.4;
            ];
          phase "two" 2.0 [];
          phase "three" 1.0 [ inj Faults.Heartbeat_stall 0.0 0.5 ];
        ];
    }
  in
  let expect =
    [
      inj (Faults.Dropout Faults.Power) 0.1 0.2;
      inj Faults.Dvfs_stuck 0.3 0.4;
      inj Faults.Heartbeat_stall 3.0 3.5;
    ]
  in
  check_bool "phase order, absolute windows" true
    (Scenario.fault_schedule cfg = expect)

(* ------------------------------------------------------------------ *)
(* FDIR: detection and isolation                                       *)
(* ------------------------------------------------------------------ *)

(* Drive a detector with [n] identical evidence ticks. *)
let feed_fdir fd n ~qos ~powers ~ips =
  for _ = 1 to n do
    Fdir.observe fd ~qos ~powers ~ips
  done

let test_fdir_isolates_dead_power_sensor () =
  let fd = Fdir.create ~k:2 ~host:0 () in
  (* Cluster 1's power reads exactly 0 while its IPS aggregate proves it
     still executes: dead sensor, not dead cluster. *)
  feed_fdir fd 60 ~qos:60. ~powers:[| 2.; 0. |] ~ips:[| 0.; 3e9 |];
  (match Fdir.poll fd with
  | [ Fdir.Power_sensor_down 1 ] -> ()
  | l -> Alcotest.failf "expected [Power_sensor_down 1], got %d findings"
           (List.length l));
  check_bool "emitted exactly once" true (Fdir.poll fd = [])

let test_fdir_isolates_dead_cluster () =
  let fd = Fdir.create ~k:2 ~host:0 () in
  (* Zero power and zero throughput: the cluster itself is gone. *)
  feed_fdir fd 60 ~qos:60. ~powers:[| 2.; 0. |] ~ips:[| 0.; 0. |];
  match Fdir.poll fd with
  | [ Fdir.Cluster_down 1 ] -> ()
  | l ->
      Alcotest.failf "expected [Cluster_down 1], got %d findings"
        (List.length l)

let test_fdir_isolates_dead_qos_sensor () =
  let fd = Fdir.create ~k:2 ~host:0 () in
  (* Heartbeats gone while the host still draws power: blind QoS sensor. *)
  feed_fdir fd 60 ~qos:0. ~powers:[| 2.; 1. |] ~ips:[| 0.; 0.5e9 |];
  match Fdir.poll fd with
  | [ Fdir.Qos_sensor_down ] -> ()
  | _ -> Alcotest.fail "expected [Qos_sensor_down]"

let test_fdir_dead_host_subsumes_qos () =
  let fd = Fdir.create ~k:2 ~host:0 () in
  (* Host power AND heartbeats both permanently zero: one dead-host
     finding, not a spurious extra QoS-sensor verdict. *)
  feed_fdir fd 60 ~qos:0. ~powers:[| 0.; 1. |] ~ips:[| 0.; 0.5e9 |];
  match Fdir.poll fd with
  | [ Fdir.Cluster_down 0 ] -> ()
  | l ->
      Alcotest.failf "expected [Cluster_down 0] alone, got %d findings"
        (List.length l)

let test_fdir_latched_dvfs_and_transients () =
  let fd = Fdir.create ~k:2 ~host:0 () in
  (* A short mismatch burst (transient) must not latch... *)
  for _ = 1 to 10 do
    Fdir.note_actuation fd ~cluster:1 ~ok:false
  done;
  Fdir.note_actuation fd ~cluster:1 ~ok:true;
  check_bool "transient burst does not latch" true (Fdir.poll fd = []);
  (* ...a 60-tick one is a latched rail. *)
  for _ = 1 to 60 do
    Fdir.note_actuation fd ~cluster:1 ~ok:false
  done;
  (match Fdir.poll fd with
  | [ Fdir.Dvfs_latched 1 ] -> ()
  | _ -> Alcotest.fail "expected [Dvfs_latched 1]");
  (* Innovation residuals corroborate but never amputate on their own. *)
  for _ = 1 to 120 do
    Fdir.note_innovation fd ~cluster:0 ~norm:25.
  done;
  check_bool "residual flagged" true (Fdir.residual_flagged fd ~cluster:0);
  check_bool "residual alone emits no finding" true (Fdir.poll fd = [])

let test_fdir_validation () =
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  check_bool "k < 1" true (raises (fun () -> Fdir.create ~k:0 ~host:0 ()));
  check_bool "host range" true (raises (fun () -> Fdir.create ~k:2 ~host:2 ()));
  check_bool "tick order" true
    (raises (fun () ->
         Fdir.create ~transient_ticks:60 ~permanent_ticks:60 ~k:2 ~host:0 ()));
  let fd = Fdir.create ~k:2 ~host:0 () in
  check_bool "powers length" true
    (raises (fun () ->
         Fdir.observe fd ~qos:1. ~powers:[| 1. |] ~ips:[| 0.; 0. |]))

(* ------------------------------------------------------------------ *)
(* Guarded fallback-duration metrics                                   *)
(* ------------------------------------------------------------------ *)

(* Satellite: two trip/recover cycles must report two bounded fallback
   spans through the tick accounting, the [guard.fallback_ticks] gauge
   and the [guard.fallback_span_ticks] histogram. *)
let test_guarded_fallback_span_metrics () =
  Spectr_obs.enable ();
  Fun.protect ~finally:Spectr_obs.disable (fun () ->
      let h = Spectr_obs.Histogram.histogram "guard.fallback_span_ticks" in
      let gauge = Spectr_obs.Counters.gauge "guard.fallback_ticks" in
      let spans_before = Spectr_obs.Histogram.count h in
      let g = warmed_guards () in
      let cfg = Guarded.default_config in
      let now = ref 0.25 in
      let advance () =
        now := !now +. 0.05;
        !now
      in
      let cycle () =
        for _ = 1 to cfg.Guarded.trip_count do
          ignore (Guarded.filter g ~now:(advance ()) ~qos:0. ~powers:[| 2.; 1. |])
        done;
        check_bool "tripped" true (Guarded.degraded g);
        let n = ref 0 in
        while Guarded.degraded g && !n < 4 * cfg.Guarded.recover_count do
          incr n;
          ignore (healthy_step g ~now:(advance ()) !n)
        done;
        check_bool "recovered" false (Guarded.degraded g)
      in
      cycle ();
      let first_span = Guarded.fallback_ticks g in
      cycle ();
      let total = Guarded.fallback_ticks g in
      check_bool "two completed spans" true
        (List.length (Guarded.recovery_times g) = 2);
      check_int "histogram saw both spans" (spans_before + 2)
        (Spectr_obs.Histogram.count h);
      (* Each span is bounded: it cannot exceed the trip tick plus the
         recovery dwell. *)
      let bound = cfg.Guarded.recover_count + cfg.Guarded.trip_count in
      check_bool "first span bounded" true
        (first_span > 0 && first_span <= bound);
      check_bool "second span bounded" true
        (total - first_span > 0 && total - first_span <= bound);
      check_bool "gauge tracks cumulative ticks" true
        (Spectr_obs.Counters.gauge_value gauge = float_of_int total))

(* ------------------------------------------------------------------ *)
(* Degraded-mode reconfiguration (SPECTR+R)                            *)
(* ------------------------------------------------------------------ *)

let reconfig_cfg ?(bg = 0) fault ~start_s =
  let phase name ~duration_s ~envelope ~background_tasks ~faults =
    {
      Scenario.phase_name = name;
      duration_s;
      envelope;
      background_tasks;
      phase_faults = faults;
    }
  in
  {
    (Scenario.default_config Benchmarks.x264) with
    Scenario.phases =
      [
        phase "healthy-then-fault" ~duration_s:8. ~envelope:5.0
          ~background_tasks:bg
          ~faults:[ Faults.permanent fault ~start_s ];
        phase "disturb" ~duration_s:4. ~envelope:5.0 ~background_tasks:8
          ~faults:[];
      ];
  }

let run_reconfigurable ?bg fault ~start_s =
  let cfg = reconfig_cfg ?bg fault ~start_s in
  let manager, h = Spectr_manager.make_reconfigurable () in
  let trace = Scenario.run ~manager cfg in
  (trace, h)

(* Post-settle safety: once detection (3.0 s), the swap window and the
   guard's recovery dwell have drained, true chip power must respect the
   envelope in the sense the robustness bench scores it — no sustained
   excess.  The capping switch reacts one supervisor period after a
   crossing, so single-OPP-step excursions of a tick or two are part of
   nominal closed-loop behaviour (they exist on the healthy platform
   too); what reconfiguration must guarantee is that they stay bounded
   and never accumulate. *)
let check_post_settle_safety trace ~settle_s =
  let time = Trace.column trace "time" in
  let true_power = Trace.column trace "true_power" in
  let envelope = Trace.column trace "envelope" in
  let excess_s = ref 0. in
  Array.iteri
    (fun i t ->
      if t >= settle_s then begin
        check_bool
          (Printf.sprintf "power %.2f within hard bound at t=%.2f"
             true_power.(i) t)
          true
          (true_power.(i) <= envelope.(i) *. 1.15);
        if true_power.(i) > envelope.(i) *. 1.05 then
          excess_s := !excess_s +. 0.05
      end)
    time;
  check_bool
    (Printf.sprintf "no sustained post-settle excess (%.2f s)" !excess_s)
    true (!excess_s <= 0.5)

let mean_qos_after trace ~after_s =
  let time = Trace.column trace "time" in
  let qos = Trace.column trace "qos" in
  let sum = ref 0. and n = ref 0 in
  Array.iteri
    (fun i t ->
      if t >= after_s then begin
        sum := !sum +. qos.(i);
        incr n
      end)
    time;
  if !n = 0 then 0. else !sum /. float_of_int !n

let test_reconfig_cluster_dead () =
  let trace, h = run_reconfigurable (Faults.Cluster_dead 1) ~start_s:2.0 in
  check_string "reconfigured" "reconfigured"
    (Spectr_manager.Reconfig.status_label (Spectr_manager.Reconfig.status h));
  check_int "one hot-swap" 1 (Spectr_manager.Reconfig.reconfigurations h);
  check_bool "cluster 1 excluded" true
    (Spectr_manager.Reconfig.excluded_clusters h = [ 1 ]);
  let desc = Spectr_manager.Reconfig.platform h in
  check_int "one-cluster plant" 1 (Platform_desc.num_clusters desc);
  check_bool "degraded description named" true
    (String.length (Platform_desc.name desc) > String.length "exynos5422"
    && Platform_desc.name desc <> "exynos5422");
  check_bool "warm re-synthesis under a second" true
    (Spectr_manager.Reconfig.last_resynth_s h < 1.0);
  check_bool "supervisor follows the degraded plant" true
    (Supervisor.num_clusters (Spectr_manager.Reconfig.supervisor h) = 1);
  (* Fault at 2.0 s + 3.0 s detection + swap window + guard recovery:
     settled well before 7.0 s. *)
  check_post_settle_safety trace ~settle_s:7.0;
  (* Closed-loop QoS re-convergence: the host cluster alone still earns
     a live heartbeat rate, far above the open-loop floor. *)
  check_bool "QoS re-converged" true (mean_qos_after trace ~after_s:10.0 > 20.);
  check_bool "guard recovered after reconfiguration" false
    (Guarded.degraded (Spectr_manager.Reconfig.guard h))

let test_reconfig_beats_guarded_fallback () =
  (* The contrast SPECTR+R exists for: under a permanently dead cluster
     SPECTR+G never leaves the open-loop floor, SPECTR+R re-converges. *)
  let cfg = reconfig_cfg (Faults.Cluster_dead 1) ~start_s:2.0 in
  let guards = Guarded.create () in
  let manager, _ = Spectr_manager.make ~guards () in
  let trace_g = Scenario.run ~manager cfg in
  check_bool "SPECTR+G still in fallback at run end" true
    (Guarded.degraded guards);
  let _, h = run_reconfigurable (Faults.Cluster_dead 1) ~start_s:2.0 in
  check_bool "SPECTR+R closed the loop again" true
    (Spectr_manager.Reconfig.status h = Spectr_manager.Reconfig.Reconfigured);
  (* Same ladder, different last rung: both stayed safe, only +R gets
     QoS back. *)
  let qos_g = mean_qos_after trace_g ~after_s:10.0 in
  let trace_r, _ = run_reconfigurable (Faults.Cluster_dead 1) ~start_s:2.0 in
  let qos_r = mean_qos_after trace_r ~after_s:10.0 in
  check_bool
    (Printf.sprintf "+R QoS %.1f well above +G floor %.1f" qos_r qos_g)
    true
    (qos_r > qos_g *. 1.5)

let test_reconfig_power_sensor_dead () =
  (* Background work keeps cluster 1 demonstrably executing, so FDIR
     isolates the dead sensor (not the cluster) — the plant is still
     reconfigured around it, pinning the unobservable cluster to its
     floor. *)
  let trace, h =
    run_reconfigurable ~bg:8
      (Faults.Sensor_dead (Faults.Power_cluster 1))
      ~start_s:2.0
  in
  check_bool "reconfigured" true
    (Spectr_manager.Reconfig.status h = Spectr_manager.Reconfig.Reconfigured);
  check_bool "cluster 1 out of the plant" true
    (Spectr_manager.Reconfig.excluded_clusters h = [ 1 ]);
  check_post_settle_safety trace ~settle_s:7.0;
  check_bool "guard recovered" false
    (Guarded.degraded (Spectr_manager.Reconfig.guard h))

let test_reconfig_dvfs_latched () =
  let trace, h =
    run_reconfigurable Faults.Dvfs_stuck_permanent ~start_s:2.0
  in
  (* The latched rail hits every cluster; each gets its OPP table pinned
     and the plant is re-synthesized — no cluster is amputated. *)
  check_bool "reconfigured" true
    (Spectr_manager.Reconfig.status h = Spectr_manager.Reconfig.Reconfigured);
  check_bool "at least one hot-swap" true
    (Spectr_manager.Reconfig.reconfigurations h >= 1);
  check_bool "no cluster excluded" true
    (Spectr_manager.Reconfig.excluded_clusters h = []);
  check_post_settle_safety trace ~settle_s:7.0;
  check_bool "guard recovered (latched rail is the expectation now)" false
    (Guarded.degraded (Spectr_manager.Reconfig.guard h))

let test_reconfig_host_dead_falls_back () =
  let trace, h = run_reconfigurable (Faults.Cluster_dead 0) ~start_s:2.0 in
  check_bool "permanent fallback" true
    (Spectr_manager.Reconfig.status h = Spectr_manager.Reconfig.Fallback);
  check_int "no hot-swap" 0 (Spectr_manager.Reconfig.reconfigurations h);
  (* A dead host is unrecoverable, but the floor must still be safe. *)
  check_post_settle_safety trace ~settle_s:7.0

let test_reconfig_no_fault_is_nominal () =
  (* Without a permanent fault the engine must stay on the boot rung
     with zero reconfigurations — the detector must not false-positive
     on a healthy closed-loop run. *)
  let cfg = Scenario.default_config Benchmarks.x264 in
  let manager, h = Spectr_manager.make_reconfigurable () in
  let _ = Scenario.run ~manager cfg in
  check_bool "nominal" true
    (Spectr_manager.Reconfig.status h = Spectr_manager.Reconfig.Nominal);
  check_int "no reconfigurations" 0
    (Spectr_manager.Reconfig.reconfigurations h);
  check_bool "nothing excluded" true
    (Spectr_manager.Reconfig.excluded_clusters h = [])

let test_supervisor_adopt_mapping () =
  (* The state-mapping rule in isolation: budgets carry by name (the
     removed cluster's allocation is dropped), capping mode carries by
     replay, and the result lands in a legal state of the new
     automaton. *)
  let noop =
    { Supervisor.switch_gains = (fun _ -> ()); set_power_ref = (fun _ _ -> ()) }
  in
  let healthy = Platform_desc.exynos5422 in
  let old_sup = Supervisor.create ~platform:healthy ~commands:noop ~envelope:5.0 () in
  (* Drive the old supervisor into capping mode. *)
  Supervisor.step old_sup ~qos:60. ~qos_ref:60. ~power:5.6 ~envelope:5.0;
  check_string "old supervisor capping" "power" (Supervisor.gains_mode old_sup);
  let degraded = Platform_desc.degrade healthy (Platform_desc.Remove_cluster 1) in
  let new_sup =
    Supervisor.create ~platform:degraded ~commands:noop ~envelope:5.0 ()
  in
  Supervisor.adopt new_sup ~prev:(Supervisor.snapshot old_sup)
    ~prev_platform:healthy;
  check_string "capping mode carried" "power" (Supervisor.gains_mode new_sup);
  check_bool "host budget carried within clamps" true
    (let v = Supervisor.power_ref new_sup 0 in
     Float.is_finite v && v > 0.);
  (* Dimension mismatch between snapshot and claimed platform is loud. *)
  let bad = { (Supervisor.snapshot old_sup) with Supervisor.snap_refs = [| 1. |] } in
  match Supervisor.adopt new_sup ~prev:bad ~prev_platform:healthy with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "short snapshot must raise"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "spectr_core"
    [
      ( "events",
        [
          Alcotest.test_case "controllability" `Quick
            test_events_controllability;
          Alcotest.test_case "lookup" `Quick test_events_lookup;
        ] );
      ( "plant-spec",
        [
          Alcotest.test_case "qos management shape" `Quick
            test_plant_qos_management_shape;
          Alcotest.test_case "power capping shape" `Quick
            test_plant_power_capping_shape;
          Alcotest.test_case "composition" `Quick test_plant_composed;
          Alcotest.test_case "spec shape" `Quick test_spec_shape;
          Alcotest.test_case "spec forbids increase when capped" `Quick
            test_spec_forbids_increase_when_capped;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "verified properties" `Quick
            test_synthesize_properties;
          Alcotest.test_case "disables increase when capped" `Quick
            test_synthesized_supervisor_disables_increase_when_capped;
          Alcotest.test_case "recovery path" `Quick
            test_synthesized_supervisor_can_recover;
          Alcotest.test_case "stats pinned" `Quick test_synthesis_stats_pinned;
          Alcotest.test_case "uncontrollable worklist" `Quick
            test_synthesis_uncontrollable_worklist;
          Alcotest.test_case "pinned pre-refactor fixture" `Quick
            test_supervisor_pinned_fixture;
          Alcotest.test_case "supcon_par pins the case-study supervisor" `Quick
            test_supcon_par_pins_case_study;
        ] );
      ( "platform-synthesis",
        [
          Alcotest.test_case "N-cluster legality" `Quick
            test_platform_synthesis_legal;
          Alcotest.test_case "event families" `Quick
            test_platform_event_families;
          Alcotest.test_case "pixel8pro event flow" `Quick
            test_platform_event_flow;
        ] );
      ( "supervisor-runtime",
        [
          Alcotest.test_case "initial budgets" `Quick
            test_supervisor_initial_budgets;
          Alcotest.test_case "validation" `Quick test_supervisor_validation;
          Alcotest.test_case "emergency gain switch" `Quick
            test_supervisor_emergency_switches_gains;
          Alcotest.test_case "recovery to qos mode" `Quick
            test_supervisor_recovers_to_qos_mode;
          Alcotest.test_case "raises budget on miss" `Quick
            test_supervisor_raises_budget_on_qos_miss;
          Alcotest.test_case "lowers budget on surplus" `Quick
            test_supervisor_lowers_budget_on_qos_surplus;
          Alcotest.test_case "budget cap" `Quick
            test_supervisor_budget_cap_respects_envelope;
          Alcotest.test_case "envelope drop reclamps" `Quick
            test_supervisor_envelope_drop_reclamps;
          Alcotest.test_case "critical cut" `Quick test_supervisor_critical_cut;
          Alcotest.test_case "never stuck" `Quick test_supervisor_state_never_stuck;
          Alcotest.test_case "budget invariants (random walk)" `Quick
            test_supervisor_budget_invariants_random_walk;
          Alcotest.test_case "scenario deterministic" `Slow
            test_scenario_deterministic;
        ] );
      ( "design-flow",
        [
          Alcotest.test_case "big 2x2 identifiable" `Slow
            test_design_flow_big_identifiable;
          Alcotest.test_case "10x10 worse than 2x2" `Slow
            test_design_flow_large_worse_than_small;
          Alcotest.test_case "gain design" `Slow test_design_flow_gains;
          Alcotest.test_case "bad goal" `Slow test_design_flow_bad_goal;
        ] );
      ( "ops-cost",
        [
          Alcotest.test_case "dims" `Quick test_ops_cost_dims;
          Alcotest.test_case "monotone" `Quick test_ops_cost_monotone_in_cores;
          Alcotest.test_case "order insignificance" `Quick
            test_ops_cost_order_insignificant_at_scale;
          Alcotest.test_case "figure magnitude" `Quick test_ops_cost_magnitude;
          Alcotest.test_case "invocation count" `Quick test_ops_cost_invocation;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "trace shape" `Slow test_scenario_trace_shape;
          Alcotest.test_case "safe phase QoS" `Slow test_safe_phase_qos;
          Alcotest.test_case "safe phase efficiency split" `Slow
            test_safe_phase_efficiency_split;
          Alcotest.test_case "emergency adaptation" `Slow
            test_emergency_phase_all_adapt;
          Alcotest.test_case "emergency compliance speed" `Slow
            test_emergency_spectr_fast_compliance;
          Alcotest.test_case "disturbance phase" `Slow test_disturbance_phase;
          Alcotest.test_case "SPECTR adapts priorities" `Slow
            test_spectr_adapts_priorities;
          Alcotest.test_case "SPECTR energy efficiency" `Slow
            test_spectr_energy_efficiency;
          Alcotest.test_case "gain-scheduling ablation" `Slow
            test_gain_scheduling_ablation;
          Alcotest.test_case "divisor validation" `Quick
            test_supervisor_divisor_validation;
          Alcotest.test_case "thermal governor" `Quick test_thermal_governor;
          Alcotest.test_case "thermal governor validation" `Quick
            test_thermal_governor_validation;
          Alcotest.test_case "thermal governor boundaries" `Quick
            test_thermal_governor_boundaries;
          Alcotest.test_case "thermal governor degraded envelope" `Quick
            test_thermal_governor_degraded_envelope;
          Alcotest.test_case "closed thermal loop" `Slow
            test_closed_thermal_loop;
          Alcotest.test_case "SISO baseline" `Slow test_siso_baseline;
          Alcotest.test_case "other benchmarks run" `Slow
            test_other_benchmarks_run;
        ] );
      ( "guarded",
        [
          Alcotest.test_case "filter never non-finite" `Quick
            test_guarded_filter_never_nonfinite;
          Alcotest.test_case "watchdog trip and recover" `Quick
            test_guarded_watchdog_trip_and_recover;
          Alcotest.test_case "watchdog re-arms after fallback and clearance"
            `Quick test_guarded_watchdog_rearms;
          Alcotest.test_case "spike vs level shift" `Quick
            test_guarded_spike_vs_level_shift;
          Alcotest.test_case "stuck sensor" `Quick test_guarded_stuck_sensor;
          Alcotest.test_case "actuator watchdog" `Quick
            test_guarded_actuator_watchdog;
          Alcotest.test_case "manager sanitization" `Quick test_manager_sanitize;
          Alcotest.test_case "apply_cluster readback" `Quick
            test_manager_apply_cluster;
          Alcotest.test_case "supervisor non-finite guard" `Quick
            test_supervisor_nonfinite_guard;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "rides out power dropout" `Slow
            test_guarded_rides_out_power_dropout;
          Alcotest.test_case "rides out heartbeat stall" `Slow
            test_guarded_rides_out_heartbeat_stall;
          Alcotest.test_case "rides out stuck DVFS" `Slow
            test_guarded_rides_out_stuck_dvfs;
          Alcotest.test_case "unguarded fooled by dropout" `Slow
            test_unguarded_spectr_fooled_by_dropout;
          Alcotest.test_case "faulted trace columns" `Quick
            test_faulted_trace_columns;
          Alcotest.test_case "unfaulted trace unchanged" `Quick
            test_unfaulted_trace_unchanged;
          Alcotest.test_case "recovery time metric" `Quick
            test_metrics_recovery_time;
          Alcotest.test_case "reconvergence time metric" `Quick
            test_metrics_reconvergence_time;
          Alcotest.test_case "zero-length phase omitted" `Slow
            test_metrics_empty_phase;
          Alcotest.test_case "mid-phase envelope step" `Quick
            test_metrics_envelope_step;
          Alcotest.test_case "find diagnostics" `Quick
            test_metrics_find_diagnostics;
          Alcotest.test_case "compliance boundaries" `Quick
            test_metrics_compliance_boundaries;
          Alcotest.test_case "fault schedule order" `Quick
            test_fault_schedule_order;
        ] );
      ( "fdir",
        [
          Alcotest.test_case "isolates dead power sensor" `Quick
            test_fdir_isolates_dead_power_sensor;
          Alcotest.test_case "isolates dead cluster" `Quick
            test_fdir_isolates_dead_cluster;
          Alcotest.test_case "isolates dead qos sensor" `Quick
            test_fdir_isolates_dead_qos_sensor;
          Alcotest.test_case "dead host subsumes qos verdict" `Quick
            test_fdir_dead_host_subsumes_qos;
          Alcotest.test_case "latched dvfs and transients" `Quick
            test_fdir_latched_dvfs_and_transients;
          Alcotest.test_case "validation" `Quick test_fdir_validation;
          Alcotest.test_case "fallback span metrics" `Quick
            test_guarded_fallback_span_metrics;
        ] );
      ( "reconfiguration",
        [
          Alcotest.test_case "adopt state mapping" `Quick
            test_supervisor_adopt_mapping;
          Alcotest.test_case "cluster death reconfigures" `Slow
            test_reconfig_cluster_dead;
          Alcotest.test_case "beats guarded fallback" `Slow
            test_reconfig_beats_guarded_fallback;
          Alcotest.test_case "dead power sensor reconfigures" `Slow
            test_reconfig_power_sensor_dead;
          Alcotest.test_case "latched dvfs pins the rail" `Slow
            test_reconfig_dvfs_latched;
          Alcotest.test_case "dead host falls back" `Slow
            test_reconfig_host_dead_falls_back;
          Alcotest.test_case "no fault stays nominal" `Slow
            test_reconfig_no_fault_is_nominal;
        ] );
    ]
