(* Tests for the system-identification substrate: Excitation, Dataset,
   Arx, Validation, Guardband.  The central scenario mirrors the paper's
   §5 methodology: excite a known plant with a staircase, fit an ARX
   model, validate on held-out data, realize as state space, and design a
   robustly-stable LQG on top. *)

open Spectr_linalg
open Spectr_control
open Spectr_sysid

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Excitation                                                          *)
(* ------------------------------------------------------------------ *)

let test_staircase_range_and_levels () =
  let s = Excitation.staircase ~lo:1. ~hi:2. ~num_levels:4 ~hold:5 ~length:200 in
  check_int "length" 200 (Array.length s);
  Array.iter
    (fun v -> check_bool "in range" true (v >= 1. && v <= 2.))
    s;
  (* Only 4 distinct levels *)
  let distinct = List.sort_uniq compare (Array.to_list s) in
  check_bool "at most 4 levels" true (List.length distinct <= 4);
  check_bool "at least 3 levels" true (List.length distinct >= 3)

let test_staircase_validation () =
  Alcotest.check_raises "levels"
    (Invalid_argument "Excitation.staircase: num_levels < 2") (fun () ->
      ignore (Excitation.staircase ~lo:0. ~hi:1. ~num_levels:1 ~hold:1 ~length:10))

let test_step_signal () =
  let s = Excitation.step ~lo:0. ~hi:5. ~at:3 ~length:6 in
  check_float "before" 0. s.(2);
  check_float "after" 5. s.(3)

let test_prbs () =
  let g = Prng.create 9L in
  let s = Excitation.prbs g ~lo:(-1.) ~hi:1. ~hold:4 ~length:100 in
  Array.iter (fun v -> check_bool "binary" true (v = -1. || v = 1.)) s;
  (* dwell: value constant within each hold window *)
  for k = 0 to (100 / 4) - 1 do
    for j = 1 to 3 do
      check_float "dwell" s.(k * 4) s.((k * 4) + j)
    done
  done

let test_all_input_variation () =
  let e =
    Excitation.all_input_variation
      ~channels:[| (0., 1.); (10., 20.) |]
      ~hold:5 ~length:50
  in
  check_int "length" 50 (Array.length e);
  check_int "channels" 2 (Array.length e.(0));
  Array.iter
    (fun row ->
      check_bool "ch0 range" true (row.(0) >= 0. && row.(0) <= 1.);
      check_bool "ch1 range" true (row.(1) >= 10. && row.(1) <= 20.))
    e

let test_single_input_variation () =
  let e =
    Excitation.single_input_variation
      ~channels:[| (0., 1.); (10., 20.) |]
      ~active:0 ~hold:5 ~length:50
  in
  Array.iter (fun row -> check_float "inactive at midpoint" 15. row.(1)) e;
  let ch0 = Array.map (fun r -> r.(0)) e in
  check_bool "active varies" true (Stats.std ch0 > 0.)

let test_random_staircase () =
  let g = Prng.create 21L in
  let s =
    Excitation.random_staircase g ~lo:1. ~hi:4. ~num_levels:4 ~hold:5
      ~length:200 ()
  in
  check_int "length" 200 (Array.length s);
  Array.iter (fun v -> check_bool "range" true (v >= 1. && v <= 4.)) s;
  (* dwell: constant within each hold window *)
  for k = 0 to (200 / 5) - 1 do
    for j = 1 to 4 do
      check_float "dwell" s.(k * 5) s.((k * 5) + j)
    done
  done;
  (* quantized to the 4 levels 1, 2, 3, 4 *)
  Array.iter
    (fun v -> check_bool "on-grid" true (Float.is_integer v))
    s;
  check_bool "several levels visited" true
    (List.length (List.sort_uniq compare (Array.to_list s)) >= 3)

let test_random_staircase_independent_streams () =
  (* Two generators split from one master produce decorrelated channels —
     the property the identification excitation depends on. *)
  let master = Prng.create 33L in
  let a =
    Excitation.random_staircase (Prng.split master) ~lo:(-1.) ~hi:1. ~hold:4
      ~length:400 ()
  in
  let b =
    Excitation.random_staircase (Prng.split master) ~lo:(-1.) ~hi:1. ~hold:4
      ~length:400 ()
  in
  check_bool "decorrelated" true
    (abs_float (Stats.cross_correlation a b 0) < 0.2)

let test_excitation_concat () =
  let a =
    Excitation.single_input_variation ~channels:[| (0., 1.) |] ~active:0
      ~hold:2 ~length:10
  in
  let c = Excitation.concat [ a; a ] in
  check_int "concat length" 20 (Array.length c);
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Excitation.concat: channel mismatch") (fun () ->
      ignore
        (Excitation.concat
           [ a; Excitation.all_input_variation ~channels:[| (0., 1.); (0., 1.) |] ~hold:2 ~length:4 ]))

(* ------------------------------------------------------------------ *)
(* Dataset                                                             *)
(* ------------------------------------------------------------------ *)

let small_dataset =
  Dataset.create
    ~u:[| [| 1. |]; [| 2. |]; [| 3. |]; [| 4. |] |]
    ~y:[| [| 10. |]; [| 20. |]; [| 30. |]; [| 40. |] |]

let test_dataset_create () =
  check_int "length" 4 (Dataset.length small_dataset);
  check_int "inputs" 1 (Dataset.num_inputs small_dataset);
  check_int "outputs" 1 (Dataset.num_outputs small_dataset)

let test_dataset_validation () =
  Alcotest.check_raises "length" (Invalid_argument "Dataset.create: length mismatch")
    (fun () -> ignore (Dataset.create ~u:[| [| 1. |] |] ~y:[| [| 1. |]; [| 2. |] |]));
  Alcotest.check_raises "empty" (Invalid_argument "Dataset.create: empty")
    (fun () -> ignore (Dataset.create ~u:[||] ~y:[||]))

let test_dataset_split () =
  let est, value = Dataset.split small_dataset ~at:0.5 in
  check_int "est" 2 (Dataset.length est);
  check_int "val" 2 (Dataset.length value);
  check_float "val first" 30. (Dataset.output_channel value 0).(0)

let test_dataset_normalize () =
  let normalized, (u_means, y_means) = Dataset.normalize small_dataset in
  check_float "u mean" 2.5 u_means.(0);
  check_float "y mean" 25. y_means.(0);
  check_float "demeaned u" 0. (Stats.mean (Dataset.input_channel normalized 0));
  check_float "demeaned y" 0. (Stats.mean (Dataset.output_channel normalized 0))

(* ------------------------------------------------------------------ *)
(* ARX: known-system recovery                                          *)
(* ------------------------------------------------------------------ *)

(* Ground truth: y(t) = 0.6 y(t−1) + 0.4 u(t−1) + e(t). *)
let generate_scalar_arx ~noise ~length seed =
  let g = Prng.create seed in
  let u =
    Excitation.prbs (Prng.split g) ~lo:(-1.) ~hi:1. ~hold:3 ~length
    |> Array.map (fun v -> [| v |])
  in
  let y = Array.make length [| 0. |] in
  for t = 1 to length - 1 do
    let e = if noise > 0. then Prng.gaussian g ~mu:0. ~sigma:noise else 0. in
    y.(t) <- [| (0.6 *. y.(t - 1).(0)) +. (0.4 *. u.(t - 1).(0)) +. e |]
  done;
  Dataset.create ~u ~y

let fit_or_fail ?ridge ~na ~nb data =
  match Arx.fit ?ridge ~na ~nb data with
  | Ok m -> m
  | Error e -> Alcotest.failf "Arx.fit: %a" Arx.pp_error e

let test_arx_recovers_coefficients () =
  let data = generate_scalar_arx ~noise:0. ~length:200 1L in
  let m = fit_or_fail ~na:1 ~nb:1 data in
  check_bool "a coefficient" true
    (abs_float (Matrix.get m.Arx.theta 0 0 -. 0.6) < 1e-6);
  check_bool "b coefficient" true
    (abs_float (Matrix.get m.Arx.theta 0 1 -. 0.4) < 1e-6)

let test_arx_noisy_recovery () =
  let data = generate_scalar_arx ~noise:0.05 ~length:2000 2L in
  let m = fit_or_fail ~na:1 ~nb:1 data in
  check_bool "a near 0.6" true
    (abs_float (Matrix.get m.Arx.theta 0 0 -. 0.6) < 0.05);
  check_bool "b near 0.4" true
    (abs_float (Matrix.get m.Arx.theta 0 1 -. 0.4) < 0.05)

let test_arx_not_enough_data () =
  let data =
    Dataset.create ~u:[| [| 1. |]; [| 1. |] |] ~y:[| [| 1. |]; [| 1. |] |]
  in
  match Arx.fit ~na:2 ~nb:2 data with
  | Error (Arx.Not_enough_data _) -> ()
  | _ -> Alcotest.fail "expected Not_enough_data"

let test_arx_bad_order () =
  match Arx.fit ~na:0 ~nb:1 small_dataset with
  | Error (Arx.Bad_order _) -> ()
  | _ -> Alcotest.fail "expected Bad_order"

let test_arx_prediction_residuals () =
  let data = generate_scalar_arx ~noise:0.05 ~length:1000 3L in
  let m = fit_or_fail ~na:1 ~nb:1 data in
  let resid = Arx.residuals m data in
  let r = Array.map (fun row -> row.(0)) resid in
  (* residual std should match the injected noise level *)
  check_bool "residual sigma ~ noise" true (abs_float (Stats.std r -. 0.05) < 0.02)

let test_arx_simulate_matches_statespace () =
  let data = generate_scalar_arx ~noise:0. ~length:120 4L in
  let m = fit_or_fail ~na:2 ~nb:2 data in
  let ss = Arx.to_statespace m in
  check_int "state dim = na*p + nb*m" 4 (Statespace.order ss);
  (* Free simulation of the ARX model vs the state-space realization:
     both driven by the same inputs from zero initial conditions. *)
  let n = 60 in
  let u = Array.init n (fun t -> [| data.Dataset.u.(t).(0) |]) in
  let ss_u = Array.map (fun row -> Matrix.col_vector row) u in
  let ss_sim = Statespace.simulate ss ~u:ss_u () in
  (* Seed the ARX free simulation with the state-space prefix (the
     realization already responds to u(0) at t=1); from there on the two
     recursions are identical and must coincide. *)
  let y0 = Array.init 2 (fun t -> [| Matrix.to_scalar ss_sim.(t) |]) in
  let arx_sim = Arx.simulate m ~u ~y0 in
  for t = 2 to n - 1 do
    check_bool
      (Printf.sprintf "step %d matches" t)
      true
      (abs_float (arx_sim.(t).(0) -. Matrix.to_scalar ss_sim.(t)) < 1e-6)
  done

let test_arx_statespace_no_feedthrough () =
  let data = generate_scalar_arx ~noise:0. ~length:120 5L in
  let m = fit_or_fail ~na:1 ~nb:1 data in
  let ss = Arx.to_statespace m in
  check_float "D = 0" 0. (Matrix.max_abs ss.Statespace.d)

(* MIMO identification: 2-input 2-output coupled plant. *)
let generate_mimo_dataset ~noise ~length seed =
  let g = Prng.create seed in
  let excitation =
    Excitation.all_input_variation
      ~channels:[| (-1., 1.); (-1., 1.) |]
      ~hold:4 ~length
  in
  let y = Array.make length [| 0.; 0. |] in
  for t = 1 to length - 1 do
    let e () = if noise > 0. then Prng.gaussian g ~mu:0. ~sigma:noise else 0. in
    let y1 = y.(t - 1) and u1 = excitation.(t - 1) in
    y.(t) <-
      [|
        (0.5 *. y1.(0)) +. (0.1 *. y1.(1)) +. (0.6 *. u1.(0)) +. (0.1 *. u1.(1)) +. e ();
        (0.05 *. y1.(0)) +. (0.7 *. y1.(1)) +. (0.2 *. u1.(0)) +. (0.5 *. u1.(1)) +. e ();
      |]
  done;
  Dataset.create ~u:excitation ~y

let test_arx_mimo_recovery () =
  let data = generate_mimo_dataset ~noise:0. ~length:400 6L in
  let m = fit_or_fail ~na:1 ~nb:1 data in
  (* theta = [A1 | B1], check a few entries *)
  check_bool "A11" true (abs_float (Matrix.get m.Arx.theta 0 0 -. 0.5) < 1e-6);
  check_bool "A22" true (abs_float (Matrix.get m.Arx.theta 1 1 -. 0.7) < 1e-6);
  check_bool "B11" true (abs_float (Matrix.get m.Arx.theta 0 2 -. 0.6) < 1e-6);
  check_bool "B22" true (abs_float (Matrix.get m.Arx.theta 1 3 -. 0.5) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let test_validation_good_model () =
  let data = generate_mimo_dataset ~noise:0.02 ~length:1200 7L in
  let est, held_out = Dataset.split data ~at:0.7 in
  let m = fit_or_fail ~na:1 ~nb:1 est in
  let report = Validation.validate ~model:m held_out in
  check_bool "identifiable" true report.Validation.identifiable;
  Array.iter
    (fun c ->
      check_bool (c.Validation.name ^ " R2 >= 0.8") true (c.Validation.r_squared >= 0.8);
      check_bool (c.Validation.name ^ " fit > 50%") true (c.Validation.fit_percent > 50.);
      (* white residual: almost all lags inside the 99% band *)
      check_bool
        (c.Validation.name ^ " few violations")
        true
        (c.Validation.violations <= 4))
    report.Validation.channels

let test_validation_wrong_model_worse () =
  (* Fit on one system, validate on a different one: fit must degrade and
     residuals must show structure. *)
  let data_a = generate_mimo_dataset ~noise:0.02 ~length:600 8L in
  let m = fit_or_fail ~na:1 ~nb:1 data_a in
  (* different dynamics *)
  let g = Prng.create 99L in
  let length = 400 in
  let u =
    Excitation.all_input_variation ~channels:[| (-1., 1.); (-1., 1.) |] ~hold:4
      ~length
  in
  let y = Array.make length [| 0.; 0. |] in
  for t = 1 to length - 1 do
    let y1 = y.(t - 1) and u1 = u.(t - 1) in
    let e () = Prng.gaussian g ~mu:0. ~sigma:0.02 in
    y.(t) <-
      [|
        (0.9 *. y1.(0)) -. (0.3 *. y1.(1)) +. (0.1 *. u1.(0)) +. e ();
        (-0.4 *. y1.(0)) +. (0.2 *. y1.(1)) +. (0.9 *. u1.(1)) +. e ();
      |]
  done;
  let other = Dataset.create ~u ~y in
  let report_wrong = Validation.validate ~model:m other in
  let report_right =
    Validation.validate ~model:(fit_or_fail ~na:1 ~nb:1 other) other
  in
  let fit_of r i = r.Validation.channels.(i).Validation.fit_percent in
  check_bool "wrong model fits worse on ch0" true
    (fit_of report_wrong 0 < fit_of report_right 0);
  check_bool "wrong model fits worse on ch1" true
    (fit_of report_wrong 1 < fit_of report_right 1)

let test_validation_output_names () =
  let data = generate_scalar_arx ~noise:0.02 ~length:300 10L in
  let m = fit_or_fail ~na:1 ~nb:1 data in
  let report = Validation.validate ~output_names:[| "power" |] ~model:m data in
  check_bool "named" true
    (report.Validation.channels.(0).Validation.name = "power")

(* ------------------------------------------------------------------ *)
(* Guardband                                                           *)
(* ------------------------------------------------------------------ *)

let test_guardband_defaults () =
  check_float "qos" 0.5 Guardband.paper_defaults.Guardband.qos;
  check_float "power" 0.3 Guardband.paper_defaults.Guardband.power

let test_guardband_validation () =
  Alcotest.check_raises "range"
    (Invalid_argument "Guardband.create: guardbands must be in [0,1)")
    (fun () -> ignore (Guardband.create ~qos:1.5 ~power:0.3))

let test_guardband_corner_count () =
  let model =
    Statespace.create
      ~a:(Matrix.of_list [ [ 0.5; 0. ]; [ 0.; 0.5 ] ])
      ~b:(Matrix.identity 2) ~c:(Matrix.identity 2) ()
  in
  let corners = Guardband.perturbed_models Guardband.paper_defaults model in
  check_int "2^p corners" 4 (List.length corners)

let test_guardband_scales_outputs () =
  let model =
    Statespace.create
      ~a:(Matrix.of_list [ [ 0.5 ] ])
      ~b:(Matrix.of_list [ [ 1. ] ])
      ~c:(Matrix.of_list [ [ 2. ] ])
      ()
  in
  let corners =
    Guardband.perturbed_models (Guardband.create ~qos:0.5 ~power:0.3) model
  in
  let cs =
    List.map (fun m -> Matrix.get m.Statespace.c 0 0) corners
    |> List.sort_uniq compare
  in
  check_bool "includes 1 and 3" true (List.mem 1. cs && List.mem 3. cs)

let test_robust_stability_of_identified_design () =
  (* Full §6 pipeline: excite -> fit -> validate -> realize -> LQG ->
     robustness gate. *)
  let data = generate_mimo_dataset ~noise:0.02 ~length:1500 11L in
  let est, held_out = Dataset.split data ~at:0.7 in
  let m = fit_or_fail ~na:1 ~nb:1 est in
  let report = Validation.validate ~model:m held_out in
  check_bool "identifiable" true report.Validation.identifiable;
  let ss = Arx.to_statespace m in
  match
    Lqg.design ~label:"qos" ~model:ss ~q_y:[| 30.; 1. |] ~r_u:[| 1.; 2. |] ()
  with
  | Error e -> Alcotest.failf "Lqg.design: %a" Lqg.pp_error e
  | Ok gains ->
      check_bool "nominal stable" true (Lqg.closed_loop_stable gains);
      check_bool "robust under paper guardbands" true
        (Guardband.robustly_stable Guardband.paper_defaults ~gains)

(* ------------------------------------------------------------------ *)
(* Calibration                                                         *)
(* ------------------------------------------------------------------ *)

let fits_or_fail sweep =
  match Calibration.fit sweep with
  | Ok fits -> fits
  | Error e -> Alcotest.failf "Calibration.fit: %s" e

(* The fitter's central contract: generate a sweep from a known
   description, fit it back, and recover models that reproduce the
   measurements with R² ≥ 0.95 per cluster — under realistic (1 %)
   multiplicative sensor noise. *)
let test_calibration_roundtrip () =
  List.iter
    (fun desc ->
      let name = Spectr_platform.Platform_desc.name desc in
      let sweep = Calibration.generate_sweep ~seed:7L ~noise:0.01 desc in
      let fits = fits_or_fail sweep in
      Alcotest.(check int)
        (name ^ " cluster count")
        (Spectr_platform.Platform_desc.num_clusters desc)
        (List.length fits);
      List.iteri
        (fun i f ->
          Alcotest.(check string)
            (Printf.sprintf "%s cluster %d order" name i)
            (Spectr_platform.Platform_desc.cluster_name desc i)
            f.Calibration.fit_cluster;
          check_bool
            (Printf.sprintf "%s/%s power R2 >= 0.95" name
               f.Calibration.fit_cluster)
            true
            (f.Calibration.fit_power_r2 >= 0.95);
          check_bool
            (Printf.sprintf "%s/%s ips R2 >= 0.95" name
               f.Calibration.fit_cluster)
            true
            (f.Calibration.fit_ips_r2 >= 0.95))
        fits;
      let host =
        Spectr_platform.Platform_desc.cluster_name desc
          (Spectr_platform.Platform_desc.host desc)
      in
      match
        Calibration.to_platform ~name:(name ^ "-refit") ~host
          ~thermal:(Spectr_platform.Platform_desc.thermal desc)
          fits
      with
      | Error e -> Alcotest.failf "to_platform: %s" e
      | Ok refit ->
          Alcotest.(check int)
            (name ^ " refit clusters")
            (Spectr_platform.Platform_desc.num_clusters desc)
            (Spectr_platform.Platform_desc.num_clusters refit);
          Alcotest.(check int)
            (name ^ " refit host")
            (Spectr_platform.Platform_desc.host desc)
            (Spectr_platform.Platform_desc.host refit))
    Spectr_platform.Platform_desc.
      [ exynos5422; pixel8pro; k_cluster 4 ]

(* A noiseless sweep must be reproduced essentially exactly. *)
let test_calibration_exact () =
  let desc = Spectr_platform.Platform_desc.exynos5422 in
  let sweep = Calibration.generate_sweep ~noise:0. desc in
  List.iter
    (fun f ->
      check_bool
        (f.Calibration.fit_cluster ^ " power R2 ~ 1") true
        (f.Calibration.fit_power_r2 > 0.9999);
      check_bool
        (f.Calibration.fit_cluster ^ " ips R2 ~ 1") true
        (f.Calibration.fit_ips_r2 > 0.9999))
    (fits_or_fail sweep)

let test_calibration_csv_roundtrip () =
  let sweep =
    Calibration.generate_sweep ~seed:3L
      Spectr_platform.Platform_desc.pixel8pro
  in
  match Calibration.sweep_of_csv (Calibration.sweep_to_csv sweep) with
  | Error e -> Alcotest.failf "sweep_of_csv: %s" e
  | Ok parsed ->
      Alcotest.(check int)
        "row count preserved" (List.length sweep) (List.length parsed);
      List.iter2
        (fun a b ->
          Alcotest.(check string)
            "cluster" a.Calibration.s_cluster b.Calibration.s_cluster;
          Alcotest.(check int)
            "freq" a.Calibration.s_freq_mhz b.Calibration.s_freq_mhz;
          Alcotest.(check int)
            "active" a.Calibration.s_active b.Calibration.s_active)
        sweep parsed

let test_calibration_csv_errors () =
  let reject what csv =
    match Calibration.sweep_of_csv csv with
    | Ok _ -> Alcotest.failf "%s: expected a parse error" what
    | Error msg ->
        check_bool (what ^ " names a line") true
          (String.length msg > 0)
  in
  reject "empty" "";
  reject "wrong header" "a,b,c\n";
  let header = String.concat "," Calibration.sample_columns in
  reject "wrong field count" (header ^ "\nbig,1000,1.0\n");
  reject "bad number" (header ^ "\nbig,fast,1.0,1,4,1.0,2.0,1e9\n");
  reject "active > total" (header ^ "\nbig,1000,1.0,5,4,1.0,2.0,1e9\n");
  reject "negative power" (header ^ "\nbig,1000,1.0,1,4,1.0,-2.0,1e9\n")

let test_calibration_degenerate () =
  (* 3 samples cannot identify 4 power parameters. *)
  let short =
    List.filteri
      (fun i _ -> i < 3)
      (Calibration.generate_sweep Spectr_platform.Platform_desc.exynos5422)
  in
  (match Calibration.fit short with
  | Ok _ -> Alcotest.fail "expected under-determined fit to fail"
  | Error msg ->
      check_bool "names the cluster" true
        (String.length msg > 0 && String.sub msg 0 7 = "cluster");
      check_bool "empty sweep rejected" true
        (Result.is_error (Calibration.fit [])))

let test_calibration_r2_gate () =
  (* Garbage measurements (huge noise) must be rejected by to_platform's
     gate, not silently shipped as a platform. *)
  let desc = Spectr_platform.Platform_desc.exynos5422 in
  let sweep = Calibration.generate_sweep ~seed:5L ~noise:0.6 desc in
  let fits = fits_or_fail sweep in
  match
    Calibration.to_platform ~name:"garbage" ~host:"big"
      ~thermal:(Spectr_platform.Platform_desc.thermal desc)
      fits
  with
  | Ok _ -> Alcotest.fail "expected the R2 gate to reject a 60 % noise fit"
  | Error msg ->
      (* The refusal must be the calibration gate speaking, not an
         incidental construction failure. *)
      let mentions_gate =
        let needle = "R2 gate" in
        let n = String.length needle and m = String.length msg in
        let rec at i =
          i + n <= m && (String.sub msg i n = needle || at (i + 1))
        in
        at 0
      in
      check_bool "gate message mentions the R2 gate" true mentions_gate

let test_calibration_unknown_host () =
  let desc = Spectr_platform.Platform_desc.exynos5422 in
  let fits = fits_or_fail (Calibration.generate_sweep desc) in
  match
    Calibration.to_platform ~name:"x" ~host:"prime"
      ~thermal:(Spectr_platform.Platform_desc.thermal desc)
      fits
  with
  | Ok _ -> Alcotest.fail "expected unknown host to be rejected"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "spectr_sysid"
    [
      ( "excitation",
        [
          Alcotest.test_case "staircase range/levels" `Quick
            test_staircase_range_and_levels;
          Alcotest.test_case "staircase validation" `Quick
            test_staircase_validation;
          Alcotest.test_case "step" `Quick test_step_signal;
          Alcotest.test_case "prbs" `Quick test_prbs;
          Alcotest.test_case "all-input variation" `Quick
            test_all_input_variation;
          Alcotest.test_case "single-input variation" `Quick
            test_single_input_variation;
          Alcotest.test_case "random staircase" `Quick test_random_staircase;
          Alcotest.test_case "independent streams" `Quick
            test_random_staircase_independent_streams;
          Alcotest.test_case "concat" `Quick test_excitation_concat;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "create" `Quick test_dataset_create;
          Alcotest.test_case "validation" `Quick test_dataset_validation;
          Alcotest.test_case "split" `Quick test_dataset_split;
          Alcotest.test_case "normalize" `Quick test_dataset_normalize;
        ] );
      ( "arx",
        [
          Alcotest.test_case "exact recovery" `Quick
            test_arx_recovers_coefficients;
          Alcotest.test_case "noisy recovery" `Quick test_arx_noisy_recovery;
          Alcotest.test_case "not enough data" `Quick test_arx_not_enough_data;
          Alcotest.test_case "bad order" `Quick test_arx_bad_order;
          Alcotest.test_case "residual level" `Quick
            test_arx_prediction_residuals;
          Alcotest.test_case "state-space equivalence" `Quick
            test_arx_simulate_matches_statespace;
          Alcotest.test_case "no feedthrough" `Quick
            test_arx_statespace_no_feedthrough;
          Alcotest.test_case "MIMO recovery" `Quick test_arx_mimo_recovery;
        ] );
      ( "validation",
        [
          Alcotest.test_case "good model" `Quick test_validation_good_model;
          Alcotest.test_case "wrong model worse" `Quick
            test_validation_wrong_model_worse;
          Alcotest.test_case "output names" `Quick test_validation_output_names;
        ] );
      ( "guardband",
        [
          Alcotest.test_case "paper defaults" `Quick test_guardband_defaults;
          Alcotest.test_case "validation" `Quick test_guardband_validation;
          Alcotest.test_case "corner count" `Quick test_guardband_corner_count;
          Alcotest.test_case "scales outputs" `Quick
            test_guardband_scales_outputs;
          Alcotest.test_case "robust identified design" `Quick
            test_robust_stability_of_identified_design;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "round-trip R2 >= 0.95" `Quick
            test_calibration_roundtrip;
          Alcotest.test_case "noiseless sweep exact" `Quick
            test_calibration_exact;
          Alcotest.test_case "sweep CSV round-trip" `Quick
            test_calibration_csv_roundtrip;
          Alcotest.test_case "sweep CSV errors" `Quick
            test_calibration_csv_errors;
          Alcotest.test_case "degenerate sweeps rejected" `Quick
            test_calibration_degenerate;
          Alcotest.test_case "R2 gate rejects garbage" `Quick
            test_calibration_r2_gate;
          Alcotest.test_case "unknown host rejected" `Quick
            test_calibration_unknown_host;
        ] );
    ]
