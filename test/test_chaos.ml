(* Chaos/soak engine tests.

   These pin the properties the reproducer workflow depends on:
   campaigns are pure functions of their seed, the engine is
   deterministic to the trace digest, a kill/restart drill with zero
   staleness is byte-invisible in the trace, the shrinker's output still
   violates, and artifacts round-trip and replay with a matching
   digest. *)

open Spectr_platform
open Spectr_chaos

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Campaign generation                                                 *)
(* ------------------------------------------------------------------ *)

let test_campaign_determinism () =
  let spec = Campaign.default_spec ~seed:7 ~cells:12 () in
  check_bool "same spec, same cells" true
    (Campaign.generate spec = Campaign.generate spec);
  check_bool "cell_of_spec matches generate" true
    (Campaign.cell_of_spec spec 5 = List.nth (Campaign.generate spec) 5);
  let other = Campaign.default_spec ~seed:8 ~cells:12 () in
  check_bool "different seed, different cells" true
    (Campaign.generate spec <> Campaign.generate other);
  check_int "cell count" 12 (List.length (Campaign.generate spec));
  List.iteri
    (fun i c ->
      check_int "index matches position" i c.Campaign.index;
      check_bool "at least one fault" true (c.Campaign.injections <> []);
      List.iter
        (fun inj ->
          check_bool "window ordered" true
            Faults.(inj.start_s < inj.stop_s && inj.start_s >= 0.))
        c.Campaign.injections)
    (Campaign.generate spec)

let test_campaign_validation () =
  expect_invalid "zero cells" (fun () -> Campaign.default_spec ~cells:0 ());
  expect_invalid "no variants" (fun () ->
      Campaign.default_spec ~variants:[] ());
  expect_invalid "no kinds" (fun () -> Campaign.default_spec ~kinds:[] ());
  expect_invalid "kill_prob out of range" (fun () ->
      Campaign.default_spec ~kill_prob:1.5 ());
  let spec = Campaign.default_spec ~cells:4 () in
  expect_invalid "index out of range" (fun () ->
      Campaign.cell_of_spec spec 4)

let test_name_round_trips () =
  List.iter
    (fun v ->
      check_bool "variant round-trips" true
        (Campaign.variant_of_string (Campaign.variant_name v) = v))
    Campaign.all_variants;
  List.iter
    (fun k ->
      check_bool "invariant kind round-trips" true
        (Invariants.kind_of_string (Invariants.kind_name k) = k))
    Invariants.
      [ Power_cap; Qos_reconvergence; Supervisor_legal; Actuation_bounds;
        Non_finite ];
  expect_invalid "unknown variant" (fun () ->
      Campaign.variant_of_string "bogus");
  expect_invalid "unknown kind" (fun () ->
      Invariants.kind_of_string "bogus")

(* ------------------------------------------------------------------ *)
(* Engine determinism and checkpoint/restore                           *)
(* ------------------------------------------------------------------ *)

let base_cell ?kill variant =
  {
    Campaign.index = 0;
    seed = 42L;
    variant;
    workload = "x264";
    profile = Campaign.default_profile;
    injections =
      [ { Faults.fault = Faults.Dropout Faults.Power;
          start_s = 4.0; stop_s = 6.0 } ];
    kill;
  }

let test_engine_determinism () =
  let cell = base_cell Campaign.Spectr_g in
  let a = Engine.run_cell cell and b = Engine.run_cell cell in
  check_string "digest stable across runs" a.Engine.digest b.Engine.digest;
  check_int "tick count stable" a.Engine.ticks b.Engine.ticks;
  check_bool "violations stable" true
    (a.Engine.violations = b.Engine.violations)

(* A kill at tick [k] with staleness 0 restores the exact pre-kill
   state into a fresh manager: the trace must be byte-identical to the
   uninterrupted run.  Pinned across the supervisory variants named in
   the issue plus a baseline manager. *)
let test_checkpoint_exact_resume () =
  List.iter
    (fun variant ->
      let name = Campaign.variant_name variant in
      let plain = Engine.run_cell (base_cell variant) in
      let killed =
        Engine.run_cell
          (base_cell ~kill:{ Campaign.kill_tick = 120; staleness = 0 }
             variant)
      in
      check_bool (name ^ ": drill checkpointed") true
        killed.Engine.checkpointed;
      check_string
        (name ^ ": kill+restore trace byte-identical")
        plain.Engine.digest killed.Engine.digest)
    Campaign.[ Spectr_g; Spectr; Mm_pow; Siso ]

let test_bounded_staleness_determinism () =
  let cell =
    base_cell ~kill:{ Campaign.kill_tick = 120; staleness = 10 }
      Campaign.Spectr_g
  in
  let a = Engine.run_cell cell and b = Engine.run_cell cell in
  check_bool "drill checkpointed" true a.Engine.checkpointed;
  check_string "stale restore still deterministic" a.Engine.digest
    b.Engine.digest

(* ------------------------------------------------------------------ *)
(* Shrinker and artifacts                                              *)
(* ------------------------------------------------------------------ *)

(* The campaign the CLI smoke test uses: unguarded SPECTR under power
   sensor faults violates the power cap in some cells.  Find one, shrink
   it, and drive the artifact round all the way through replay. *)
let test_shrink_and_replay () =
  let spec =
    Campaign.default_spec ~seed:3 ~cells:16 ~variants:[ Campaign.Spectr ]
      ~kinds:[ Faults.Dropout Faults.Power; Faults.Stuck_at_last Faults.Power ]
      ()
  in
  let rec find i =
    if i >= spec.Campaign.cells then
      Alcotest.fail "no violating cell in the seeded campaign"
    else
      let outcome = Engine.run_cell (Campaign.cell_of_spec spec i) in
      if Engine.violates outcome then outcome else find (i + 1)
  in
  let outcome = find 0 in
  let kind = (List.hd outcome.Engine.violations).Invariants.v_kind in
  let violates c = Engine.violates ~kind (Engine.run_cell c) in
  let r = Shrink.minimize ~violates outcome.Engine.cell in
  check_bool "minimized cell still violates" true (violates r.Shrink.cell);
  check_bool "reproducer has at most 2 faults" true
    (List.length r.Shrink.cell.Campaign.injections <= 2);
  let min_out = Engine.run_cell r.Shrink.cell in
  let art =
    { Artifact.cell = r.Shrink.cell; invariant = Some kind;
      digest = Some min_out.Engine.digest }
  in
  check_bool "artifact round-trips through text" true
    (Artifact.of_string (Artifact.to_string art) = art);
  let path = Filename.temp_file "chaos-test" ".repro" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Artifact.save ~path art;
      check_bool "artifact round-trips through disk" true
        (Artifact.load ~path = art));
  let rep = Artifact.replay art in
  check_bool "replay reproduces the violation" true rep.Artifact.reproduced;
  check_bool "replay digest matches" true
    (rep.Artifact.digest_matched = Some true)

let valid_artifact_lines =
  [ "spectr-chaos-reproducer v1"; "seed 42"; "index 0"; "variant SPECTR";
    "workload x264"; "profile 5 3.5 3 4 5 16"; "fault dropout:power@4/6" ]

let artifact_of lines = Artifact.of_string (String.concat "\n" lines ^ "\n")

let test_artifact_parse_errors () =
  (* The unmodified skeleton parses. *)
  let a = artifact_of valid_artifact_lines in
  check_bool "skeleton parses" true
    (a.Artifact.cell.Campaign.variant = Campaign.Spectr
    && a.Artifact.cell.Campaign.seed = 42L
    && a.Artifact.invariant = None && a.Artifact.digest = None);
  expect_invalid "empty input" (fun () -> Artifact.of_string "");
  expect_invalid "bad header" (fun () ->
      artifact_of ("not-a-reproducer" :: List.tl valid_artifact_lines));
  expect_invalid "missing seed" (fun () ->
      artifact_of
        (List.filter
           (fun l -> not (String.length l >= 4 && String.sub l 0 4 = "seed"))
           valid_artifact_lines));
  expect_invalid "unknown variant" (fun () ->
      artifact_of
        (List.map
           (fun l -> if l = "variant SPECTR" then "variant BOGUS" else l)
           valid_artifact_lines));
  expect_invalid "garbage fault window" (fun () ->
      artifact_of (valid_artifact_lines @ [ "fault nonsense" ]));
  expect_invalid "staleness exceeds kill tick" (fun () ->
      artifact_of (valid_artifact_lines @ [ "kill 10 20" ]));
  expect_invalid "unknown invariant name" (fun () ->
      artifact_of (valid_artifact_lines @ [ "invariant bogus" ]))

(* Node-kill campaigns: drills are pure functions of (spec, index), the
   sweep is byte-identical for any worker count, and a rebooted node
   meets the fleet admission contract — smoothed power back under its
   cap within the deadline. *)

let test_node_kill_drill_purity () =
  let spec = Node_kill.default_spec ~seed:7 ~drills:4 () in
  let a = Node_kill.drill_of_spec spec 2 in
  let b = Node_kill.drill_of_spec spec 2 in
  check_bool "equal drills" true (a = b);
  check_bool "distinct indices differ" true
    (Node_kill.drill_of_spec spec 1 <> a);
  expect_invalid "index out of range" (fun () ->
      Node_kill.drill_of_spec spec 4);
  expect_invalid "drills <= 0" (fun () ->
      Node_kill.default_spec ~drills:0 ())

let test_node_kill_recovery () =
  let spec = Node_kill.default_spec ~drills:6 () in
  let r = Node_kill.run spec in
  check_int "all drills ran" 6 (List.length r.Node_kill.r_outcomes);
  check_int "all recovered" 0 r.Node_kill.r_failed;
  List.iter
    (fun (o : Node_kill.outcome) ->
      check_bool "checkpoint taken" true o.Node_kill.o_checkpointed;
      check_bool "downtime accrued debt" true (o.Node_kill.o_debt > 0.))
    r.Node_kill.r_outcomes

let test_node_kill_determinism () =
  let spec = Node_kill.default_spec ~drills:4 () in
  let digest_with jobs =
    let pool = Spectr_exec.Pool.create ~jobs () in
    Fun.protect
      ~finally:(fun () -> Spectr_exec.Pool.shutdown pool)
      (fun () -> (Node_kill.run ~pool spec).Node_kill.r_digest)
  in
  let d1 = digest_with 1 in
  let d4 = digest_with 4 in
  check_string "digest independent of worker count" d1 d4

let () =
  Alcotest.run "spectr_chaos"
    [
      ( "campaign",
        [
          Alcotest.test_case "pure function of the seed" `Quick
            test_campaign_determinism;
          Alcotest.test_case "spec validation" `Quick
            test_campaign_validation;
          Alcotest.test_case "name round-trips" `Quick test_name_round_trips;
        ] );
      ( "engine",
        [
          Alcotest.test_case "deterministic to the digest" `Quick
            test_engine_determinism;
          Alcotest.test_case "checkpoint/restore byte-identical" `Slow
            test_checkpoint_exact_resume;
          Alcotest.test_case "bounded staleness deterministic" `Quick
            test_bounded_staleness_determinism;
        ] );
      ( "reproducers",
        [
          Alcotest.test_case "shrink, serialize, replay" `Slow
            test_shrink_and_replay;
          Alcotest.test_case "artifact parse errors" `Quick
            test_artifact_parse_errors;
        ] );
      ( "node-kill",
        [
          Alcotest.test_case "drills pure function of spec" `Quick
            test_node_kill_drill_purity;
          Alcotest.test_case "rebooted nodes meet the deadline" `Slow
            test_node_kill_recovery;
          Alcotest.test_case "digest independent of worker count" `Quick
            test_node_kill_determinism;
        ] );
    ]
