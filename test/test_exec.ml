(* Tests for the parallel scenario-execution engine (Spectr_exec):
   the domain worker pool, the ordered Parmap combinators, and the
   synthesis cache.

   The determinism test is the acceptance criterion of the parallel
   harness: the same scenario grid run on a 4-job pool and on a 1-job
   (purely sequential, zero domains spawned) pool must produce
   byte-identical traces. *)

open Spectr_automata
open Spectr_platform
open Spectr_exec

module Scenario = Spectr.Scenario

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* SPECTR_JOBS parsing                                                 *)
(* ------------------------------------------------------------------ *)

let test_parse_jobs () =
  check_bool "positive" true (Pool.parse_jobs "4" = Some 4);
  check_bool "one" true (Pool.parse_jobs "1" = Some 1);
  check_bool "zero rejected" true (Pool.parse_jobs "0" = None);
  check_bool "negative rejected" true (Pool.parse_jobs "-2" = None);
  check_bool "garbage rejected" true (Pool.parse_jobs "x" = None);
  check_bool "empty rejected" true (Pool.parse_jobs "" = None);
  check_bool "default >= 1" true (Pool.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Pool semantics                                                      *)
(* ------------------------------------------------------------------ *)

let with_pool ~jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_map_ordered () =
  (* A map over enough elements to force every worker through many
     tasks must come back in submission order. *)
  let xs = List.init 1000 Fun.id in
  let f x = (x * x) + 1 in
  let expect = List.map f xs in
  with_pool ~jobs:4 (fun pool ->
      check_bool "jobs" true (Pool.jobs pool = 4);
      check_bool "ordered" true (Pool.map pool f xs = expect));
  with_pool ~jobs:1 (fun pool ->
      check_bool "sequential identical" true (Pool.map pool f xs = expect))

let test_pool_map_empty_and_tiny () =
  with_pool ~jobs:4 (fun pool ->
      check_bool "empty" true (Pool.map pool (fun x -> x) [] = []);
      check_bool "singleton" true (Pool.map pool string_of_int [ 7 ] = [ "7" ]))

let test_pool_exception_propagation () =
  (* The smallest-index failure wins, deterministically, regardless of
     which domain hits its exception first. *)
  with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "smallest index re-raised" (Failure "boom 3")
        (fun () ->
          ignore
            (Pool.map pool
               (fun x ->
                 if x >= 3 then failwith (Printf.sprintf "boom %d" x) else x)
               (List.init 64 Fun.id))))

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~jobs:3 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* After shutdown, map still works (sequential fallback). *)
  check_bool "fallback after shutdown" true
    (Pool.map pool (fun x -> x + 1) [ 1; 2; 3 ] = [ 2; 3; 4 ])

let test_pool_invalid_jobs () =
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Pool.create: jobs < 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let test_pool_reentrant_map_rejected () =
  (* A task that maps over its own pool would deadlock on the shared
     queue; it must be rejected immediately instead. *)
  with_pool ~jobs:2 (fun pool ->
      Alcotest.check_raises "re-entrant map rejected"
        (Invalid_argument
           "Pool.map: re-entrant call from inside a task of this pool")
        (fun () ->
          ignore (Pool.map pool (fun _ -> Pool.map pool Fun.id [ 1; 2 ]) [ 0; 1 ])));
  (* Mapping over a *different* pool from inside a task is legal. *)
  with_pool ~jobs:2 (fun outer ->
      with_pool ~jobs:2 (fun inner ->
          let r =
            Pool.map outer
              (fun x ->
                List.fold_left ( + ) 0 (Pool.map inner Fun.id (List.init x Fun.id)))
              [ 3; 4 ]
          in
          check_bool "nested map over a different pool" true (r = [ 3; 6 ])))

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

(* Kept non-tail-recursive on purpose: each level leaves a stack frame,
   so the raised exception's backtrace names this file. *)
let rec deep_raise n = if n = 0 then failwith "deep" else 1 + deep_raise (n - 1)

let test_pool_backtrace_preserved () =
  (* Task exceptions cross the worker-domain boundary with their
     original backtrace ([raise_with_backtrace] in [map]; the workers
     inherit the creator's recording flag, so this must be set before
     the pool is created). *)
  Printexc.record_backtrace true;
  with_pool ~jobs:2 (fun pool ->
      match Pool.map pool (fun _ -> deep_raise 12) [ 0; 1 ] with
      | _ -> Alcotest.fail "expected the task exception to propagate"
      | exception Failure _ ->
          let bt = Printexc.get_backtrace () in
          check_bool "backtrace names the raising function's file" true
            (contains bt "test_exec"))

let test_parmap_combinators () =
  with_pool ~jobs:4 (fun pool ->
      check_bool "map" true
        (Parmap.map ~pool (fun x -> 2 * x) [ 1; 2; 3 ] = [ 2; 4; 6 ]);
      check_bool "mapi" true
        (Parmap.mapi ~pool (fun i x -> (i, x)) [ "a"; "b" ]
        = [ (0, "a"); (1, "b") ]);
      (* iter runs every task to completion before returning; each task
         writes a distinct slot so this is race-free. *)
      let hits = Array.make 16 0 in
      Parmap.iter ~pool (fun i -> hits.(i) <- hits.(i) + 1)
        (List.init 16 Fun.id);
      check_bool "iter barrier" true (Array.for_all (( = ) 1) hits))

(* ------------------------------------------------------------------ *)
(* Event snapshot reads under contention                               *)
(* ------------------------------------------------------------------ *)

let test_event_reads_lock_free_under_contention () =
  (* Regression for the read-path fix: [Event.of_id]/[Event.count] used
     to take the global intern mutex on every call, serializing every
     domain that merely *decodes* an event.  They now read an immutable
     snapshot, so a multi-domain pool hammering reads while another task
     interns new events must see only consistent (id, name) pairs and a
     monotonically growing count — and finish quickly.  Under the old
     locking this test still passes but is a convoy; under a broken
     unsynchronized publication it fails on a torn or stale decode. *)
  let base = Event.count () in
  let tagged i = Printf.sprintf "contention_ev_%d" i in
  let writer () =
    for i = 0 to 199 do
      ignore (Event.controllable (tagged i))
    done;
    0
  in
  let reader seed =
    (* Decode every event interned so far, repeatedly, while the writer
       runs; every decode must round-trip id -> t -> id. *)
    let errors = ref 0 in
    for _ = 1 to 2000 do
      let n = Event.count () in
      if n < base then incr errors;
      let i = seed mod max 1 n in
      let e = Event.of_id i in
      if Event.id e <> i then incr errors
    done;
    !errors
  in
  with_pool ~jobs:4 (fun pool ->
      let results =
        Pool.map pool
          (fun w -> if w = 0 then writer () else reader w)
          [ 0; 1; 2; 3; 4; 5 ]
      in
      check_bool "no torn or stale reads" true
        (List.for_all (( = ) 0) results));
  check_bool "all writes visible afterwards" true (Event.count () >= base + 200);
  (* And the ids decode to the names the writer interned. *)
  let e0 = Event.controllable (tagged 0) in
  check_string "round trip by id" (tagged 0) (Event.name (Event.of_id (Event.id e0)))

(* ------------------------------------------------------------------ *)
(* Synthesis cache                                                     *)
(* ------------------------------------------------------------------ *)

(* A tiny plant/spec pair independent of the case study: one machine
   with an uncontrollable finish, and a spec forcing strict start/finish
   alternation. *)
let tiny_plant () =
  let start = Event.controllable "start" in
  let finish = Event.uncontrollable "finish" in
  Automaton.create ~name:"M" ~initial:"Idle" ~marked:[ "Idle" ]
    ~transitions:
      [ ("Idle", start, "Working"); ("Working", finish, "Idle") ]
    ()

let tiny_spec () =
  let start = Event.controllable "start" in
  let finish = Event.uncontrollable "finish" in
  Automaton.create ~name:"Alt" ~initial:"S0" ~marked:[ "S0" ]
    ~transitions:[ ("S0", start, "S1"); ("S1", finish, "S0") ]
    ()

let test_synth_cache_hit () =
  Synth_cache.clear ();
  let plant = tiny_plant () and spec = tiny_spec () in
  let sup1 =
    match Synth_cache.supcon ~plant ~spec with
    | Ok (sup, _) -> sup
    | Error _ -> Alcotest.fail "first synthesis failed"
  in
  let fresh = Synthesis.supcon_exn ~plant ~spec in
  check_bool "cached structurally equal to fresh synthesis" true
    (Automaton.isomorphic sup1 fresh);
  (* Rebuilding structurally identical automata (different physical
     values) must hit, and a hit returns the very same automaton. *)
  let sup2 =
    match Synth_cache.supcon ~plant:(tiny_plant ()) ~spec:(tiny_spec ()) with
    | Ok (sup, _) -> sup
    | Error _ -> Alcotest.fail "second synthesis failed"
  in
  check_bool "hit shares the miss's automaton" true (sup1 == sup2);
  let hits, misses = Synth_cache.stats () in
  check_int "one miss" 1 misses;
  check_int "one hit" 1 hits;
  (* A structurally different key (spec marking moved) misses. *)
  let spec' = tiny_spec () in
  let spec'' =
    Automaton.create ~name:"Alt" ~initial:"S0" ~marked:[ "S1" ]
      ~transitions:
        (List.map
           (fun tr -> (tr.Automaton.src, tr.Automaton.event, tr.Automaton.dst))
           (Automaton.transitions spec'))
      ()
  in
  check_bool "digest distinguishes markings" true
    (Automaton.structural_digest spec' <> Automaton.structural_digest spec'');
  Synth_cache.clear ();
  check_bool "clear resets" true (Synth_cache.stats () = (0, 0))

(* ------------------------------------------------------------------ *)
(* Single-flight: the mechanism behind the synthesis cache             *)
(* ------------------------------------------------------------------ *)

(* The regression test for the old design, which held one global mutex
   across the synthesis itself and so serialized *distinct* keys: two
   slow computations for different keys on a 2-job pool must overlap.
   Each compute spins (bounded by a wall-clock deadline) until it has
   seen both computations active at once; under the old lock-across-
   compute scheme the peak concurrency would stay at 1 and this test
   would fail. *)
let test_single_flight_distinct_keys_overlap () =
  let t = Single_flight.create () in
  let active = Atomic.make 0 and peak = Atomic.make 0 in
  let compute key () =
    let mine = 1 + Atomic.fetch_and_add active 1 in
    let rec bump () =
      let p = Atomic.get peak in
      if mine > p && not (Atomic.compare_and_set peak p mine) then bump ()
    in
    bump ();
    let deadline = Unix.gettimeofday () +. 5.0 in
    while Atomic.get active < 2 && Unix.gettimeofday () < deadline do
      Domain.cpu_relax ()
    done;
    ignore (Atomic.fetch_and_add active (-1));
    key * 10
  in
  with_pool ~jobs:2 (fun pool ->
      let res =
        Pool.map pool
          (fun k -> Single_flight.find_or_compute t ~key:k ~compute:(compute k))
          [ 1; 2 ]
      in
      check_bool "results" true (res = [ 10; 20 ]));
  check_int "distinct keys computed concurrently" 2 (Atomic.get peak);
  check_bool "two misses, no hits" true (Single_flight.stats t = (0, 2))

let test_single_flight_same_key_once () =
  (* Racers on one key share a single computation: whichever outcome of
     the race (waiter-on-in-flight or late arrival finding Done), the
     value is computed once, both callers get the same physical result,
     and the stats read one miss plus one hit. *)
  let t = Single_flight.create () in
  let runs = Atomic.make 0 in
  let compute () =
    ignore (Atomic.fetch_and_add runs 1);
    ref 42
  in
  let res =
    with_pool ~jobs:2 (fun pool ->
        Pool.map pool
          (fun _ -> Single_flight.find_or_compute t ~key:"k" ~compute)
          [ 0; 1 ])
  in
  (match res with
  | [ a; b ] -> check_bool "same physical value" true (a == b)
  | _ -> Alcotest.fail "expected two results");
  check_int "computed exactly once" 1 (Atomic.get runs);
  check_bool "one miss, one hit" true (Single_flight.stats t = (1, 1))

let test_single_flight_exception_uninstalls () =
  let t = Single_flight.create () in
  Alcotest.check_raises "compute exception propagates" (Failure "sf") (fun () ->
      ignore
        (Single_flight.find_or_compute t ~key:1 ~compute:(fun () ->
             failwith "sf")));
  check_int "failed key recomputes" 7
    (Single_flight.find_or_compute t ~key:1 ~compute:(fun () -> 7));
  Single_flight.clear t;
  check_bool "clear zeroes stats" true (Single_flight.stats t = (0, 0))

(* An always-admissible second spec (free self-loops) so the synthesis
   for a second, structurally distinct cache key succeeds. *)
let loose_spec () =
  let start = Event.controllable "start" in
  let finish = Event.uncontrollable "finish" in
  Automaton.create ~name:"Free" ~initial:"T0" ~marked:[ "T0" ]
    ~transitions:[ ("T0", start, "T0"); ("T0", finish, "T0") ]
    ()

let test_synth_cache_parallel_distinct () =
  (* Distinct keys synthesized concurrently on a 2-job pool: correct
     results, two misses, no hits — the cache no longer funnels distinct
     synthesis problems through one lock. *)
  Synth_cache.clear ();
  let plant = tiny_plant () in
  with_pool ~jobs:2 (fun pool ->
      let results =
        Pool.map pool
          (fun spec -> Synth_cache.supcon ~plant ~spec)
          [ tiny_spec (); loose_spec () ]
      in
      List.iteri
        (fun i -> function
          | Ok _ -> ()
          | Error _ -> Alcotest.fail (Printf.sprintf "synthesis %d failed" i))
        results);
  check_bool "two misses, no hits" true (Synth_cache.stats () = (0, 2));
  Synth_cache.clear ()

(* ------------------------------------------------------------------ *)
(* End-to-end determinism: 4-job grid == 1-job grid                    *)
(* ------------------------------------------------------------------ *)

let short_config () =
  (* The paper scenario with each phase cut to 1 s — long enough to
     exercise every phase transition, short enough for a test. *)
  let cfg = Scenario.default_config Benchmarks.x264 in
  {
    cfg with
    Scenario.phases =
      List.map
        (fun ph -> { ph with Scenario.duration_s = 1.0 })
        cfg.Scenario.phases;
  }

let grid_specs () :
    (string * (unit -> Spectr.Manager.t)) list =
  [
    ("SPECTR", fun () -> fst (Spectr.Spectr_manager.make ()));
    ("MM-Pow", fun () -> Spectr.Mm.make_pow ());
    (* A second SPECTR cell makes two workers race on the same synthesis
       cache key in the 4-job run. *)
    ("SPECTR-2", fun () -> fst (Spectr.Spectr_manager.make ()));
    ("FS", fun () -> Spectr.Fs.make ());
  ]

let run_grid pool =
  let config = short_config () in
  Parmap.map ~pool
    (fun (_, make) -> Trace.to_csv (Scenario.run ~manager:(make ()) config))
    (grid_specs ())

let test_grid_determinism () =
  let seq = with_pool ~jobs:1 run_grid in
  let par = with_pool ~jobs:4 run_grid in
  check_int "same cell count" (List.length seq) (List.length par);
  List.iteri
    (fun i (a, b) ->
      check_string
        (Printf.sprintf "cell %d (%s) byte-identical"
           i
           (fst (List.nth (grid_specs ()) i)))
        (Digest.to_hex (Digest.string a))
        (Digest.to_hex (Digest.string b)))
    (List.combine seq par)

let () =
  Alcotest.run "spectr_exec"
    [
      ( "pool",
        [
          Alcotest.test_case "SPECTR_JOBS parsing" `Quick test_parse_jobs;
          Alcotest.test_case "ordered map" `Quick test_pool_map_ordered;
          Alcotest.test_case "empty and tiny inputs" `Quick
            test_pool_map_empty_and_tiny;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
          Alcotest.test_case "invalid jobs" `Quick test_pool_invalid_jobs;
          Alcotest.test_case "re-entrant map rejected" `Quick
            test_pool_reentrant_map_rejected;
          Alcotest.test_case "task backtrace preserved" `Quick
            test_pool_backtrace_preserved;
          Alcotest.test_case "parmap combinators" `Quick
            test_parmap_combinators;
          Alcotest.test_case "event reads lock-free under contention" `Quick
            test_event_reads_lock_free_under_contention;
        ] );
      ( "single-flight",
        [
          Alcotest.test_case "distinct keys overlap" `Quick
            test_single_flight_distinct_keys_overlap;
          Alcotest.test_case "same key computed once" `Quick
            test_single_flight_same_key_once;
          Alcotest.test_case "exception uninstalls marker" `Quick
            test_single_flight_exception_uninstalls;
        ] );
      ( "synth-cache",
        [
          Alcotest.test_case "hit semantics" `Quick test_synth_cache_hit;
          Alcotest.test_case "parallel distinct keys" `Quick
            test_synth_cache_parallel_distinct;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "4-job grid == 1-job grid" `Slow
            test_grid_determinism;
        ] );
    ]
