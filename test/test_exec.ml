(* Tests for the parallel scenario-execution engine (Spectr_exec):
   the domain worker pool, the ordered Parmap combinators, and the
   synthesis cache.

   The determinism test is the acceptance criterion of the parallel
   harness: the same scenario grid run on a 4-job pool and on a 1-job
   (purely sequential, zero domains spawned) pool must produce
   byte-identical traces. *)

open Spectr_automata
open Spectr_platform
open Spectr_exec

module Scenario = Spectr.Scenario

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* SPECTR_JOBS parsing                                                 *)
(* ------------------------------------------------------------------ *)

let test_parse_jobs () =
  check_bool "positive" true (Pool.parse_jobs "4" = Some 4);
  check_bool "one" true (Pool.parse_jobs "1" = Some 1);
  check_bool "zero rejected" true (Pool.parse_jobs "0" = None);
  check_bool "negative rejected" true (Pool.parse_jobs "-2" = None);
  check_bool "garbage rejected" true (Pool.parse_jobs "x" = None);
  check_bool "empty rejected" true (Pool.parse_jobs "" = None);
  check_bool "default >= 1" true (Pool.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* Pool semantics                                                      *)
(* ------------------------------------------------------------------ *)

let with_pool ~jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_map_ordered () =
  (* A map over enough elements to force every worker through many
     tasks must come back in submission order. *)
  let xs = List.init 1000 Fun.id in
  let f x = (x * x) + 1 in
  let expect = List.map f xs in
  with_pool ~jobs:4 (fun pool ->
      check_bool "jobs" true (Pool.jobs pool = 4);
      check_bool "ordered" true (Pool.map pool f xs = expect));
  with_pool ~jobs:1 (fun pool ->
      check_bool "sequential identical" true (Pool.map pool f xs = expect))

let test_pool_map_empty_and_tiny () =
  with_pool ~jobs:4 (fun pool ->
      check_bool "empty" true (Pool.map pool (fun x -> x) [] = []);
      check_bool "singleton" true (Pool.map pool string_of_int [ 7 ] = [ "7" ]))

let test_pool_exception_propagation () =
  (* The smallest-index failure wins, deterministically, regardless of
     which domain hits its exception first. *)
  with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "smallest index re-raised" (Failure "boom 3")
        (fun () ->
          ignore
            (Pool.map pool
               (fun x ->
                 if x >= 3 then failwith (Printf.sprintf "boom %d" x) else x)
               (List.init 64 Fun.id))))

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~jobs:3 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* After shutdown, map still works (sequential fallback). *)
  check_bool "fallback after shutdown" true
    (Pool.map pool (fun x -> x + 1) [ 1; 2; 3 ] = [ 2; 3; 4 ])

let test_pool_invalid_jobs () =
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Pool.create: jobs < 1") (fun () ->
      ignore (Pool.create ~jobs:0 ()))

let test_parmap_combinators () =
  with_pool ~jobs:4 (fun pool ->
      check_bool "map" true
        (Parmap.map ~pool (fun x -> 2 * x) [ 1; 2; 3 ] = [ 2; 4; 6 ]);
      check_bool "mapi" true
        (Parmap.mapi ~pool (fun i x -> (i, x)) [ "a"; "b" ]
        = [ (0, "a"); (1, "b") ]);
      (* iter runs every task to completion before returning; each task
         writes a distinct slot so this is race-free. *)
      let hits = Array.make 16 0 in
      Parmap.iter ~pool (fun i -> hits.(i) <- hits.(i) + 1)
        (List.init 16 Fun.id);
      check_bool "iter barrier" true (Array.for_all (( = ) 1) hits))

(* ------------------------------------------------------------------ *)
(* Synthesis cache                                                     *)
(* ------------------------------------------------------------------ *)

(* A tiny plant/spec pair independent of the case study: one machine
   with an uncontrollable finish, and a spec forcing strict start/finish
   alternation. *)
let tiny_plant () =
  let start = Event.controllable "start" in
  let finish = Event.uncontrollable "finish" in
  Automaton.create ~name:"M" ~initial:"Idle" ~marked:[ "Idle" ]
    ~transitions:
      [ ("Idle", start, "Working"); ("Working", finish, "Idle") ]
    ()

let tiny_spec () =
  let start = Event.controllable "start" in
  let finish = Event.uncontrollable "finish" in
  Automaton.create ~name:"Alt" ~initial:"S0" ~marked:[ "S0" ]
    ~transitions:[ ("S0", start, "S1"); ("S1", finish, "S0") ]
    ()

let test_synth_cache_hit () =
  Synth_cache.clear ();
  let plant = tiny_plant () and spec = tiny_spec () in
  let sup1 =
    match Synth_cache.supcon ~plant ~spec with
    | Ok (sup, _) -> sup
    | Error _ -> Alcotest.fail "first synthesis failed"
  in
  let fresh = Synthesis.supcon_exn ~plant ~spec in
  check_bool "cached structurally equal to fresh synthesis" true
    (Automaton.isomorphic sup1 fresh);
  (* Rebuilding structurally identical automata (different physical
     values) must hit, and a hit returns the very same automaton. *)
  let sup2 =
    match Synth_cache.supcon ~plant:(tiny_plant ()) ~spec:(tiny_spec ()) with
    | Ok (sup, _) -> sup
    | Error _ -> Alcotest.fail "second synthesis failed"
  in
  check_bool "hit shares the miss's automaton" true (sup1 == sup2);
  let hits, misses = Synth_cache.stats () in
  check_int "one miss" 1 misses;
  check_int "one hit" 1 hits;
  (* A structurally different key (spec marking moved) misses. *)
  let spec' = tiny_spec () in
  let spec'' =
    Automaton.create ~name:"Alt" ~initial:"S0" ~marked:[ "S1" ]
      ~transitions:
        (List.map
           (fun tr -> (tr.Automaton.src, tr.Automaton.event, tr.Automaton.dst))
           (Automaton.transitions spec'))
      ()
  in
  check_bool "digest distinguishes markings" true
    (Automaton.structural_digest spec' <> Automaton.structural_digest spec'');
  Synth_cache.clear ();
  check_bool "clear resets" true (Synth_cache.stats () = (0, 0))

(* ------------------------------------------------------------------ *)
(* End-to-end determinism: 4-job grid == 1-job grid                    *)
(* ------------------------------------------------------------------ *)

let short_config () =
  (* The paper scenario with each phase cut to 1 s — long enough to
     exercise every phase transition, short enough for a test. *)
  let cfg = Scenario.default_config Benchmarks.x264 in
  {
    cfg with
    Scenario.phases =
      List.map
        (fun ph -> { ph with Scenario.duration_s = 1.0 })
        cfg.Scenario.phases;
  }

let grid_specs () :
    (string * (unit -> Spectr.Manager.t)) list =
  [
    ("SPECTR", fun () -> fst (Spectr.Spectr_manager.make ()));
    ("MM-Pow", fun () -> Spectr.Mm.make_pow ());
    (* A second SPECTR cell makes two workers race on the same synthesis
       cache key in the 4-job run. *)
    ("SPECTR-2", fun () -> fst (Spectr.Spectr_manager.make ()));
    ("FS", fun () -> Spectr.Fs.make ());
  ]

let run_grid pool =
  let config = short_config () in
  Parmap.map ~pool
    (fun (_, make) -> Trace.to_csv (Scenario.run ~manager:(make ()) config))
    (grid_specs ())

let test_grid_determinism () =
  let seq = with_pool ~jobs:1 run_grid in
  let par = with_pool ~jobs:4 run_grid in
  check_int "same cell count" (List.length seq) (List.length par);
  List.iteri
    (fun i (a, b) ->
      check_string
        (Printf.sprintf "cell %d (%s) byte-identical"
           i
           (fst (List.nth (grid_specs ()) i)))
        (Digest.to_hex (Digest.string a))
        (Digest.to_hex (Digest.string b)))
    (List.combine seq par)

let () =
  Alcotest.run "spectr_exec"
    [
      ( "pool",
        [
          Alcotest.test_case "SPECTR_JOBS parsing" `Quick test_parse_jobs;
          Alcotest.test_case "ordered map" `Quick test_pool_map_ordered;
          Alcotest.test_case "empty and tiny inputs" `Quick
            test_pool_map_empty_and_tiny;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
          Alcotest.test_case "invalid jobs" `Quick test_pool_invalid_jobs;
          Alcotest.test_case "parmap combinators" `Quick
            test_parmap_combinators;
        ] );
      ( "synth-cache",
        [ Alcotest.test_case "hit semantics" `Quick test_synth_cache_hit ] );
      ( "determinism",
        [
          Alcotest.test_case "4-job grid == 1-job grid" `Slow
            test_grid_determinism;
        ] );
    ]
