(* Tests for the supervisory-control substrate: Event, Automaton, Compose,
   Reach, Verify, Synthesis, Dot.

   The running example is the classic "small factory": two machines and a
   one-slot buffer.  Machine i: Idle -start_i-> Working -finish_i!-> Idle,
   with breakdowns.  The buffer specification forces machine 2 to only
   start when the buffer is full, and machine 1 to only deposit when it is
   empty.  This exercises exactly the plant/spec/supcon pipeline SPECTR
   uses for the Exynos case study. *)

open Spectr_automata

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

let test_event_basics () =
  let e = Event.controllable "start" in
  let u = Event.uncontrollable "break" in
  check_string "name" "start" (Event.name e);
  check_bool "controllable" true (Event.is_controllable e);
  check_bool "uncontrollable" false (Event.is_controllable u)

let test_event_order () =
  let a = Event.controllable "a" and b = Event.controllable "b" in
  check_bool "a < b" true (Event.compare a b < 0);
  check_bool "equal" true (Event.equal a (Event.controllable "a"))

let test_event_inconsistent_controllability () =
  (* The comparator used to raise from inside Set rebalancing when one
     name carried both polarities; the order is now total — the two
     events are simply distinct, uncontrollable first — and the conflict
     is reported by the alphabet-consistency checks instead (see the
     alphabet-conflict tests below). *)
  let a = Event.controllable "x" and b = Event.uncontrollable "x" in
  check_bool "distinct" false (Event.equal a b);
  check_bool "nonzero compare" true (Event.compare a b <> 0);
  check_bool "uncontrollable first" true (Event.compare b a < 0);
  check_bool "antisymmetric" true (Event.compare a b = -Event.compare b a);
  check_int "both coexist in a set" 2
    (Event.Set.cardinal (Event.set_of_list [ a; b ]))

let test_event_interning () =
  let a = Event.controllable "same" in
  check_bool "physically interned" true (a == Event.controllable "same");
  check_int "id stable" (Event.id a) (Event.id (Event.controllable "same"));
  check_bool "polarities get distinct ids" true
    (Event.id a <> Event.id (Event.uncontrollable "same"));
  check_bool "of_id inverts id" true (Event.equal a (Event.of_id (Event.id a)))

let test_event_pp () =
  check_string "controllable" "go"
    (Format.asprintf "%a" Event.pp (Event.controllable "go"));
  check_string "uncontrollable" "boom!"
    (Format.asprintf "%a" Event.pp (Event.uncontrollable "boom"))

(* ------------------------------------------------------------------ *)
(* Machine fixtures                                                    *)
(* ------------------------------------------------------------------ *)

let start1 = Event.controllable "start1"
let finish1 = Event.uncontrollable "finish1"
let start2 = Event.controllable "start2"
let finish2 = Event.uncontrollable "finish2"

let machine ~start ~finish n =
  Automaton.create ~marked:[ "Idle" ]
    ~name:(Printf.sprintf "M%d" n)
    ~initial:"Idle"
    ~transitions:[ ("Idle", start, "Working"); ("Working", finish, "Idle") ]
    ()

let m1 = machine ~start:start1 ~finish:finish1 1
let m2 = machine ~start:start2 ~finish:finish2 2

(* Buffer spec: finish1 fills the slot; start2 drains it.  Overflow
   (finish1 when full) and underflow (start2 when empty) are forbidden by
   omission. *)
let buffer_spec =
  Automaton.create ~marked:[ "Empty" ] ~name:"Buffer" ~initial:"Empty"
    ~transitions:[ ("Empty", finish1, "Full"); ("Full", start2, "Empty") ]
    ()

(* ------------------------------------------------------------------ *)
(* Automaton basics                                                    *)
(* ------------------------------------------------------------------ *)

let test_automaton_counts () =
  check_int "states" 2 (Automaton.num_states m1);
  check_int "transitions" 2 (Automaton.num_transitions m1);
  check_string "initial" "Idle" (Automaton.initial m1)

let test_automaton_step () =
  (match Automaton.step m1 "Idle" start1 with
  | Some s -> check_string "step" "Working" s
  | None -> Alcotest.fail "expected transition");
  check_bool "undefined" true (Automaton.step m1 "Idle" finish1 = None)

let test_automaton_unknown_state () =
  Alcotest.check_raises "unknown"
    (Invalid_argument "Automaton M1: unknown state \"Nope\"") (fun () ->
      ignore (Automaton.step m1 "Nope" start1))

let test_automaton_enabled () =
  let evs = Automaton.enabled m1 "Idle" in
  check_int "one enabled" 1 (List.length evs);
  check_string "start1" "start1" (Event.name (List.hd evs))

let test_automaton_nondeterminism_rejected () =
  Alcotest.check_raises "nondet"
    (Invalid_argument "Automaton bad: nondeterministic on \"e\" from state \"A\"")
    (fun () ->
      ignore
        (Automaton.create ~name:"bad" ~initial:"A"
           ~transitions:
             [
               ("A", Event.controllable "e", "B");
               ("A", Event.controllable "e", "C");
             ]
           ()))

let test_automaton_conflicting_controllability () =
  Alcotest.check_raises "create conflict"
    (Invalid_argument
       "Automaton bad: event \"x\" is used both controllably and \
        uncontrollably")
    (fun () ->
      ignore
        (Automaton.create ~name:"bad" ~initial:"A"
           ~transitions:
             [
               ("A", Event.controllable "x", "B");
               ("B", Event.uncontrollable "x", "A");
             ]
           ()))

let test_automaton_duplicate_transition_ok () =
  let a =
    Automaton.create ~name:"dup" ~initial:"A"
      ~transitions:
        [
          ("A", Event.controllable "e", "B");
          ("A", Event.controllable "e", "B");
        ]
      ()
  in
  check_int "deduplicated" 1 (Automaton.num_transitions a)

let test_automaton_marked_default () =
  let a =
    Automaton.create ~name:"all-marked" ~initial:"A"
      ~transitions:[ ("A", Event.controllable "e", "B") ]
      ()
  in
  check_int "all marked" 2 (List.length (Automaton.marked a))

let test_automaton_marked_explicit_empty () =
  let a =
    Automaton.create ~marked:[] ~name:"none-marked" ~initial:"A"
      ~transitions:[ ("A", Event.controllable "e", "B") ]
      ()
  in
  check_int "none marked" 0 (List.length (Automaton.marked a))

let test_automaton_unknown_marked () =
  Alcotest.check_raises "unknown marked"
    (Invalid_argument "Automaton m: marked state \"Z\" unknown") (fun () ->
      ignore
        (Automaton.create ~marked:[ "Z" ] ~name:"m" ~initial:"A"
           ~transitions:[] ()))

let test_automaton_accepts () =
  check_bool "empty word at marked initial" true (Automaton.accepts m1 []);
  check_bool "start1 alone not marked" false (Automaton.accepts m1 [ start1 ]);
  check_bool "start1 finish1" true (Automaton.accepts m1 [ start1; finish1 ]);
  check_bool "undefined word" false (Automaton.accepts m1 [ finish1 ])

let test_automaton_trace () =
  (match Automaton.trace m1 [ start1 ] with
  | Some s -> check_string "trace" "Working" s
  | None -> Alcotest.fail "trace should be defined");
  check_bool "bad trace" true (Automaton.trace m1 [ finish1 ] = None)

let test_automaton_forbidden () =
  let a =
    Automaton.create ~forbidden:[ "Bad" ] ~name:"f" ~initial:"A"
      ~transitions:[ ("A", Event.uncontrollable "oops", "Bad") ]
      ()
  in
  check_bool "is_forbidden" true (Automaton.is_forbidden a "Bad");
  check_bool "initial ok" false (Automaton.is_forbidden a "A");
  check_int "forbidden list" 1 (List.length (Automaton.forbidden a))

let test_relabel_states () =
  let a = Automaton.relabel_states m1 (fun s -> "M1_" ^ s) in
  check_string "initial renamed" "M1_Idle" (Automaton.initial a);
  check_bool "isomorphic to original" true (Automaton.isomorphic a m1)

let test_relabel_collision () =
  Alcotest.check_raises "collision"
    (Invalid_argument "Automaton.relabel_states: \"Idle\" and \"Working\" collide")
    (fun () -> ignore (Automaton.relabel_states m1 (fun _ -> "X")))

let test_isomorphic_negative () =
  check_bool "different automata" false (Automaton.isomorphic m1 m2)

let test_restrict_states () =
  match Automaton.restrict_states m1 ~keep:(fun s -> s = "Idle") with
  | None -> Alcotest.fail "initial kept"
  | Some a ->
      check_int "one state" 1 (Automaton.num_states a);
      check_int "no transitions" 0 (Automaton.num_transitions a)

let test_restrict_drop_initial () =
  check_bool "dropping initial gives None" true
    (Automaton.restrict_states m1 ~keep:(fun s -> s <> "Idle") = None)

(* ------------------------------------------------------------------ *)
(* Composition                                                         *)
(* ------------------------------------------------------------------ *)

let test_compose_interleaving () =
  (* Disjoint alphabets: full interleaving, 2*2 = 4 states. *)
  let c = Compose.pair m1 m2 in
  check_int "4 states" 4 (Automaton.num_states c);
  check_string "initial" "Idle.Idle" (Automaton.initial c);
  (* each state has both private events enabled except when working *)
  check_int "8 transitions" 8 (Automaton.num_transitions c)

let test_compose_synchronization () =
  (* Shared event must synchronize: M1 || Buffer — finish1 shared. *)
  let c = Compose.pair m1 buffer_spec in
  (* states: Idle.Empty, Working.Empty, Idle.Full, Working.Full *)
  check_int "4 states" 4 (Automaton.num_states c);
  (* finish1 only allowed when buffer empty *)
  check_bool "finish1 blocked when full" true
    (Automaton.step c "Working.Full" finish1 = None)

let test_compose_marking () =
  let c = Compose.pair m1 m2 in
  check_bool "both idle marked" true (Automaton.is_marked c "Idle.Idle");
  check_bool "working not marked" false (Automaton.is_marked c "Working.Idle")

let test_compose_alphabet_union () =
  let c = Compose.pair m1 buffer_spec in
  check_int "alphabet 3" 3 (Event.Set.cardinal (Automaton.alphabet c))

let test_compose_all () =
  let c = Compose.all [ m1; m2; buffer_spec ] in
  check_bool "nonempty" true (Automaton.num_states c > 0);
  Alcotest.check_raises "empty list" (Invalid_argument "Compose.all: empty list")
    (fun () -> ignore (Compose.all []))

let test_compose_reachable_only () =
  (* Composition builds only the reachable product: a self-synchronizing
     pair where one component never moves keeps the other frozen too. *)
  let e = Event.controllable "tick" in
  let a =
    Automaton.create ~name:"A" ~initial:"0"
      ~transitions:[ ("0", e, "1"); ("1", e, "0") ] ()
  in
  let blocked = Automaton.create ~name:"B" ~initial:"Z" ~alphabet:[ e ] ~transitions:[] () in
  let c = Compose.pair a blocked in
  check_int "frozen product" 1 (Automaton.num_states c)

let test_compose_nested_naming () =
  (* Regression: product-state names used to be joined with a bare dot,
     so the pairs ("a.b","c") and ("a","b.c") both collapsed to the name
     "a.b.c" — a silent state merge in nested compositions whose
     components already carry dotted names (every composed plant does).
     The escaping join keeps the separator unambiguous. *)
  let e1 = Event.controllable "e1" and e2 = Event.controllable "e2" in
  let a =
    Automaton.create ~name:"A" ~initial:"p0"
      ~transitions:[ ("p0", e1, "a.b"); ("p0", e2, "a") ]
      ()
  in
  let b =
    Automaton.create ~name:"B" ~initial:"q0"
      ~transitions:[ ("q0", e1, "c"); ("q0", e2, "b.c") ]
      ()
  in
  let c = Compose.pair a b in
  (* p0.q0, a\.b.c and a.b\.c: three distinct states (a bare-dot join
     merges the latter two). *)
  check_int "three distinct product states" 3 (Automaton.num_states c);
  check_bool "escaped left component" true (Automaton.mem_state c "a\\.b.c");
  check_bool "escaped right component" true (Automaton.mem_state c "a.b\\.c");
  (* Dot-free components keep their plain dotted join. *)
  check_string "plain join unchanged" "p0.q0"
    (Automaton.product_state_name "p0" "q0");
  check_string "escaping join" "a\\.b.c" (Automaton.product_state_name "a.b" "c")

(* ------------------------------------------------------------------ *)
(* Reachability                                                        *)
(* ------------------------------------------------------------------ *)

let unreachable_automaton =
  Automaton.create ~marked:[ "A"; "Orphan" ] ~name:"unreach" ~initial:"A"
    ~transitions:
      [
        ("A", Event.controllable "go", "B");
        ("Orphan", Event.controllable "go", "A");
        ("B", Event.controllable "back", "A");
        ("B", Event.uncontrollable "die", "Dead");
      ]
    ()

let test_accessible () =
  let a = Reach.accessible unreachable_automaton in
  check_bool "orphan removed" false (Automaton.mem_state a "Orphan");
  check_int "3 states" 3 (Automaton.num_states a)

let test_coaccessible () =
  match Reach.coaccessible unreachable_automaton with
  | None -> Alcotest.fail "initial is coaccessible"
  | Some a ->
      (* Dead cannot reach a marked state *)
      check_bool "dead removed" false (Automaton.mem_state a "Dead");
      check_bool "orphan kept (coaccessible)" true (Automaton.mem_state a "Orphan")

let test_trim () =
  match Reach.trim unreachable_automaton with
  | None -> Alcotest.fail "trim nonempty"
  | Some a ->
      check_bool "dead removed" false (Automaton.mem_state a "Dead");
      check_bool "orphan removed" false (Automaton.mem_state a "Orphan");
      check_bool "is_trim" true (Reach.is_trim a)

let test_trim_fixpoint () =
  (* B only reaches marked A through C; when C is pruned as unreachable…
     build a chain where trimming must iterate. *)
  let a =
    Automaton.create ~marked:[ "M" ] ~name:"chain" ~initial:"S"
      ~transitions:
        [
          ("S", Event.controllable "a", "M");
          ("S", Event.controllable "b", "B");
          ("B", Event.controllable "c", "Dead");
        ]
      ()
  in
  match Reach.trim a with
  | None -> Alcotest.fail "nonempty"
  | Some t ->
      check_bool "B pruned" false (Automaton.mem_state t "B");
      check_bool "Dead pruned" false (Automaton.mem_state t "Dead");
      check_int "2 states" 2 (Automaton.num_states t)

let test_trim_empty () =
  let a =
    Automaton.create ~marked:[] ~name:"hopeless" ~initial:"S"
      ~transitions:[ ("S", Event.controllable "x", "S") ]
      ()
  in
  check_bool "no marked -> None" true (Reach.trim a = None)

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)
(* ------------------------------------------------------------------ *)

let test_nonblocking_positive () =
  check_bool "machine nonblocking" true (Verify.is_nonblocking m1)

let test_nonblocking_negative () =
  let a =
    Automaton.create ~marked:[ "A" ] ~name:"blocky" ~initial:"A"
      ~transitions:[ ("A", Event.controllable "go", "Trap") ]
      ()
  in
  match Verify.nonblocking a with
  | Ok () -> Alcotest.fail "should block"
  | Error { state } -> check_string "witness" "Trap" state

let test_controllable_positive () =
  (* A supervisor that only restricts the controllable start events. *)
  let sup =
    Automaton.create ~name:"sup" ~initial:"S"
      ~transitions:
        [
          ("S", start1, "T");
          ("T", finish1, "S");
        ]
      ()
  in
  let plant = m1 in
  check_bool "controllable" true (Verify.is_controllable ~plant ~supervisor:sup)

let test_controllable_negative () =
  (* A supervisor that tries to disable an uncontrollable finish1.  The
     event must be in the supervisor's alphabet: an event outside the
     alphabet is implicitly always enabled. *)
  let sup =
    Automaton.create ~name:"sup" ~initial:"S" ~alphabet:[ finish1 ]
      ~transitions:[ ("S", start1, "T") ]
      ()
  in
  match Verify.controllable ~plant:m1 ~supervisor:sup with
  | Ok () -> Alcotest.fail "should be uncontrollable"
  | Error w ->
      check_string "event" "finish1" (Event.name w.event);
      check_string "plant state" "Working" w.plant_state

let test_closed_loop () =
  let sup =
    Automaton.create ~name:"sup" ~initial:"S"
      ~transitions:[ ("S", start1, "T"); ("T", finish1, "S") ]
      ()
  in
  let cl = Verify.closed_loop ~plant:m1 ~supervisor:sup in
  check_int "closed loop states" 2 (Automaton.num_states cl)

(* ------------------------------------------------------------------ *)
(* Synthesis                                                           *)
(* ------------------------------------------------------------------ *)

let test_supcon_small_factory () =
  let plant = Compose.pair m1 m2 in
  match Synthesis.supcon ~plant ~spec:buffer_spec with
  | Error _ -> Alcotest.fail "supervisor exists"
  | Ok (sup, stats) ->
      check_bool "nonblocking" true (Verify.is_nonblocking sup);
      check_bool "controllable" true
        (Verify.is_controllable ~plant ~supervisor:sup);
      check_bool "some product states" true (stats.Synthesis.product_states > 0);
      (* The supervisor must prevent buffer overflow: after start1;finish1
         (buffer full), start1 must be disabled until start2 drains. *)
      let after = Automaton.trace sup [ start1; finish1 ] in
      (match after with
      | None -> Alcotest.fail "word should survive"
      | Some s ->
          let enabled = Automaton.enabled sup s in
          check_bool "start1 disabled when buffer full" false
            (List.exists (fun e -> Event.name e = "start1") enabled);
          check_bool "start2 enabled" true
            (List.exists (fun e -> Event.name e = "start2") enabled))

let test_supcon_forbidden_state () =
  (* Plant: toggle between On and Overload via uncontrollable surge; a spec
     forbidding Overload is unenforceable, but a spec forbidding the
     controllable path is fine. *)
  let surge = Event.uncontrollable "surge" in
  let enable = Event.controllable "enable" in
  let plant =
    Automaton.create ~marked:[ "Off" ] ~name:"P" ~initial:"Off"
      ~transitions:[ ("Off", enable, "On"); ("On", surge, "Overload") ]
      ()
  in
  (* Spec with forbidden state reached by the uncontrollable surge: the
     supervisor must then never enable the machine at all. *)
  let spec =
    Automaton.create ~marked:[ "Off" ] ~forbidden:[ "Boom" ] ~name:"S"
      ~initial:"Off"
      ~transitions:[ ("Off", enable, "On"); ("On", surge, "Boom") ]
      ()
  in
  match Synthesis.supcon ~plant ~spec with
  | Error _ -> Alcotest.fail "empty: supervisor could just never enable"
  | Ok (sup, stats) ->
      check_bool "never enables" true
        (Automaton.trace sup [ enable ] = None);
      check_bool "removed forbidden" true (stats.Synthesis.removed_forbidden >= 1);
      check_bool "nonblocking" true (Verify.is_nonblocking sup)

let test_supcon_empty () =
  (* The initial state itself uncontrollably reaches the forbidden state:
     no supervisor exists. *)
  let surge = Event.uncontrollable "surge" in
  let plant =
    Automaton.create ~marked:[ "Off" ] ~name:"P" ~initial:"Off"
      ~transitions:[ ("Off", surge, "Dead") ]
      ()
  in
  let spec =
    Automaton.create ~marked:[ "Off" ] ~forbidden:[ "Dead" ] ~name:"S"
      ~initial:"Off"
      ~transitions:[ ("Off", surge, "Dead") ]
      ()
  in
  match Synthesis.supcon ~plant ~spec with
  | Error Synthesis.Empty_supervisor -> ()
  | Ok _ -> Alcotest.fail "expected empty supervisor"

let test_supcon_exn () =
  let plant = Compose.pair m1 m2 in
  let sup = Synthesis.supcon_exn ~plant ~spec:buffer_spec in
  check_bool "nonempty" true (Automaton.num_states sup > 0)

let test_supcon_maximally_permissive_when_spec_loose () =
  (* A spec equal to the plant's own behaviour removes nothing. *)
  let spec = Automaton.rename m1 "spec" in
  match Synthesis.supcon ~plant:m1 ~spec with
  | Error _ -> Alcotest.fail "nonempty"
  | Ok (sup, _) ->
      check_bool "language preserved" true
        (Automaton.accepts sup [ start1; finish1 ]
        && Automaton.trace sup [ start1 ] <> None)

(* qcheck: synthesized supervisors are always controllable + nonblocking *)

let gen_plant_spec =
  let open QCheck2.Gen in
  let events =
    [|
      Event.controllable "c1";
      Event.controllable "c2";
      Event.uncontrollable "u1";
      Event.uncontrollable "u2";
    |]
  in
  let state i = Printf.sprintf "s%d" i in
  let gen_auto name n_states n_trans ~with_forbidden =
    let* trans =
      list_size (return n_trans)
        (let* s = int_range 0 (n_states - 1) in
         let* d = int_range 0 (n_states - 1) in
         let* e = int_range 0 (Array.length events - 1) in
         return (state s, events.(e), state d))
    in
    let* marked_idx = int_range 0 (n_states - 1) in
    let* forbidden_idx =
      if with_forbidden then map Option.some (int_range 1 (n_states - 1))
      else return None
    in
    (* Deduplicate nondeterministic transitions: keep first per (src,event) *)
    let seen = Hashtbl.create 16 in
    let trans =
      List.filter
        (fun (s, e, _) ->
          let k = (s, Event.name e) in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        trans
    in
    let states_mentioned =
      List.concat_map (fun (s, _, d) -> [ s; d ]) trans @ [ state 0 ]
    in
    let marked =
      if List.mem (state marked_idx) states_mentioned then [ state marked_idx ]
      else [ state 0 ]
    in
    let forbidden =
      match forbidden_idx with
      | Some i when List.mem (state i) states_mentioned && not (List.mem (state i) marked)
        -> [ state i ]
      | _ -> []
    in
    return
      (Automaton.create ~marked ~forbidden ~name ~initial:(state 0)
         ~transitions:trans ())
  in
  let* plant = gen_auto "G" 4 8 ~with_forbidden:false in
  let* spec = gen_auto "E" 3 6 ~with_forbidden:true in
  return (plant, spec)

let prop_supcon_sound =
  QCheck2.Test.make ~name:"supcon is controllable+nonblocking+trim" ~count:300
    gen_plant_spec (fun (plant, spec) ->
      match Synthesis.supcon ~plant ~spec with
      | Error Synthesis.Empty_supervisor -> true
      | Ok (sup, _) ->
          Verify.is_nonblocking sup
          && Verify.is_controllable ~plant ~supervisor:sup
          && Reach.is_trim sup
          &&
          (* never contains a forbidden state *)
          List.for_all
            (fun s -> not (Automaton.is_forbidden sup s))
            (Automaton.states sup))

let prop_compose_commutative_language =
  QCheck2.Test.make ~name:"A||B isomorphic to B||A up to naming" ~count:100
    gen_plant_spec (fun (a, b) ->
      let ab = Compose.pair a b in
      let ba = Compose.pair b a in
      (* swap names "x.y" -> "y.x" to compare *)
      let swap s =
        match String.index_opt s '.' with
        | Some i ->
            String.sub s (i + 1) (String.length s - i - 1)
            ^ "." ^ String.sub s 0 i
        | None -> s
      in
      Automaton.isomorphic ab (Automaton.relabel_states ba swap))

let prop_supcon_language_within_plant =
  (* Every word the supervisor accepts must be executable by the plant:
     supervision only restricts. *)
  QCheck2.Test.make ~name:"supcon language ⊆ plant language" ~count:150
    gen_plant_spec (fun (plant, spec) ->
      match Synthesis.supcon ~plant ~spec with
      | Error Synthesis.Empty_supervisor -> true
      | Ok (sup, _) ->
          (* enumerate all supervisor paths up to depth 4 *)
          let rec walk state plant_state depth =
            depth = 0
            || List.for_all
                 (fun e ->
                   match Automaton.step sup state e with
                   | None -> true
                   | Some next -> (
                       match Automaton.step plant plant_state e with
                       | None -> Event.Set.mem e (Automaton.alphabet plant) = false
                       | Some pnext -> walk next pnext (depth - 1)))
                 (Automaton.enabled sup state)
          in
          walk (Automaton.initial sup) (Automaton.initial plant) 4)

let prop_compose_associative =
  (* Left- and right-nested compositions agree up to the flat dot-joined
     state naming both produce. *)
  QCheck2.Test.make ~name:"(A||B)||C isomorphic to A||(B||C)" ~count:60
    QCheck2.Gen.(pair gen_plant_spec gen_plant_spec)
    (fun ((a, b), (c, _)) ->
      let left = Compose.pair (Compose.pair a b) c in
      let right = Compose.pair a (Compose.pair b c) in
      Automaton.isomorphic left right)

let prop_trim_idempotent =
  QCheck2.Test.make ~name:"trim idempotent" ~count:100 gen_plant_spec
    (fun (a, _) ->
      match Reach.trim a with
      | None -> true
      | Some t -> (
          match Reach.trim t with
          | None -> false
          | Some t' -> Automaton.num_states t = Automaton.num_states t'))

(* ------------------------------------------------------------------ *)
(* Index-native core vs string-native references                       *)
(* ------------------------------------------------------------------ *)

let test_alphabet_conflict_reported_at_entry () =
  (* Regression: with per-automaton consistency but a cross-automaton
     conflict, Event.compare used to raise from inside Set.union during
     composition — deep in a rebalance, with no context.  Compose.pair
     and Synthesis.supcon now check alphabet consistency on entry and
     name the event. *)
  let a =
    Automaton.create ~name:"A" ~initial:"P"
      ~transitions:[ ("P", Event.controllable "clash", "P") ]
      ()
  in
  let b =
    Automaton.create ~name:"B" ~initial:"Q"
      ~transitions:[ ("Q", Event.uncontrollable "clash", "Q") ]
      ()
  in
  Alcotest.check_raises "compose names the event"
    (Invalid_argument
       "Compose.pair(A,B): event \"clash\" is uncontrollable in one alphabet \
        but controllable in the other")
    (fun () -> ignore (Compose.pair a b));
  Alcotest.check_raises "supcon names the event"
    (Invalid_argument
       "Synthesis.supcon(A,B): event \"clash\" is uncontrollable in one \
        alphabet but controllable in the other")
    (fun () -> ignore (Synthesis.supcon ~plant:a ~spec:b))

(* Deterministic seeded automaton generator (simple LCG), for the
   equivalence tests pinning the index-native algorithms to string-native
   reference implementations: unlike the QCheck generators these
   enumerate a fixed seed range, so a failure reproduces from the seed
   number alone. *)
let random_automaton ~seed ~name =
  let rng = ref ((seed * 2654435761) land 0x3FFFFFFF) in
  let rand n =
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    !rng mod n
  in
  let events =
    [|
      Event.controllable "rn_c1";
      Event.controllable "rn_c2";
      Event.uncontrollable "rn_u1";
      Event.uncontrollable "rn_u2";
    |]
  in
  let n_states = 2 + rand 5 in
  let state i = Printf.sprintf "q%d" i in
  let n_trans = 1 + rand (3 * n_states) in
  let seen = Hashtbl.create 16 in
  let trans = ref [] in
  for _ = 1 to n_trans do
    let s = rand n_states and d = rand n_states in
    let e = events.(rand (Array.length events)) in
    if not (Hashtbl.mem seen (s, Event.id e)) then begin
      Hashtbl.add seen (s, Event.id e) ();
      trans := (state s, e, state d) :: !trans
    end
  done;
  let mentioned =
    List.sort_uniq String.compare
      (state 0 :: List.concat_map (fun (s, _, d) -> [ s; d ]) !trans)
  in
  let marked = List.filter (fun _ -> rand 2 = 0) mentioned in
  let forbidden = List.filter (fun s -> s <> state 0 && rand 4 = 0) mentioned in
  Automaton.create ~marked ~forbidden ~name ~initial:(state 0)
    ~transitions:!trans ()

(* String-native reference composition — the pre-refactor algorithm,
   expressed on the public name-based API only. *)
let ref_pair a b =
  let sigma_a = Automaton.alphabet a and sigma_b = Automaton.alphabet b in
  let alphabet = Event.Set.union sigma_a sigma_b in
  let name_of = Automaton.product_state_name in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let transitions = ref [] and marked = ref [] and forbidden = ref [] in
  let visit (qa, qb) =
    if not (Hashtbl.mem seen (qa, qb)) then begin
      Hashtbl.add seen (qa, qb) ();
      Queue.push (qa, qb) queue;
      if Automaton.is_marked a qa && Automaton.is_marked b qb then
        marked := name_of qa qb :: !marked;
      if Automaton.is_forbidden a qa || Automaton.is_forbidden b qb then
        forbidden := name_of qa qb :: !forbidden
    end
  in
  let start = (Automaton.initial a, Automaton.initial b) in
  visit start;
  while not (Queue.is_empty queue) do
    let qa, qb = Queue.pop queue in
    Event.Set.iter
      (fun e ->
        let in_a = Event.Set.mem e sigma_a and in_b = Event.Set.mem e sigma_b in
        let next =
          match (in_a, in_b) with
          | true, true -> (
              match (Automaton.step a qa e, Automaton.step b qb e) with
              | Some ja, Some jb -> Some (ja, jb)
              | _ -> None)
          | true, false -> Option.map (fun ja -> (ja, qb)) (Automaton.step a qa e)
          | false, true -> Option.map (fun jb -> (qa, jb)) (Automaton.step b qb e)
          | false, false -> None
        in
        match next with
        | None -> ()
        | Some (ja, jb) ->
            visit (ja, jb);
            transitions := (name_of qa qb, e, name_of ja jb) :: !transitions)
      alphabet
  done;
  Automaton.create ~marked:!marked ~forbidden:!forbidden
    ~alphabet:(Event.Set.elements alphabet)
    ~name:(Automaton.name a ^ "||" ^ Automaton.name b)
    ~initial:(name_of (fst start) (snd start))
    ~transitions:!transitions ()

let test_indexed_compose_matches_reference () =
  for seed = 0 to 59 do
    let a = random_automaton ~seed ~name:"RA" in
    let b = random_automaton ~seed:(seed + 1000) ~name:"RB" in
    let fast = Compose.pair a b in
    let slow = ref_pair a b in
    if not (Automaton.isomorphic fast slow) then
      Alcotest.failf "seed %d: indexed compose differs from reference" seed;
    (* and the names agree exactly, not just up to isomorphism *)
    if
      List.sort String.compare (Automaton.states fast)
      <> List.sort String.compare (Automaton.states slow)
    then Alcotest.failf "seed %d: state names differ" seed
  done

(* String-native reference restriction with the documented survive rule:
   a kept state survives when it is the initial state or an endpoint of a
   kept transition. *)
let ref_restrict a keep =
  if not (keep (Automaton.initial a)) then None
  else
    let trans =
      List.filter
        (fun { Automaton.src; dst; _ } -> keep src && keep dst)
        (Automaton.transitions a)
    in
    let survivors =
      Automaton.initial a
      :: List.concat_map (fun { Automaton.src; dst; _ } -> [ src; dst ]) trans
    in
    let survives s = List.mem s survivors in
    Some
      (Automaton.create
         ~marked:(List.filter survives (Automaton.marked a))
         ~forbidden:(List.filter survives (Automaton.forbidden a))
         ~alphabet:(Event.Set.elements (Automaton.alphabet a))
         ~name:(Automaton.name a) ~initial:(Automaton.initial a)
         ~transitions:
           (List.map
              (fun { Automaton.src; event; dst } -> (src, event, dst))
              trans)
         ())

let test_restrict_indices_matches_reference () =
  for seed = 0 to 59 do
    let a = random_automaton ~seed ~name:"RR" in
    let n = Automaton.num_states a in
    let keep = Array.init n (fun i -> ((i * 7) + seed) mod 3 <> 0) in
    let by_index = Reach.restrict_indices a keep in
    let by_name =
      ref_restrict a (fun s -> keep.(Automaton.index_of_state a s))
    in
    match (by_index, by_name) with
    | None, None -> ()
    | Some x, Some y ->
        if not (Automaton.isomorphic x y) then
          Alcotest.failf "seed %d: restriction differs from reference" seed;
        if
          List.sort String.compare (Automaton.states x)
          <> List.sort String.compare (Automaton.states y)
        then Alcotest.failf "seed %d: restricted state names differ" seed
    | Some _, None | None, Some _ ->
        Alcotest.failf "seed %d: restriction None-ness differs" seed
  done

let test_index_api_roundtrip () =
  for seed = 0 to 19 do
    let a = random_automaton ~seed ~name:"IDX" in
    for i = 0 to Automaton.num_states a - 1 do
      let s = Automaton.state_of_index a i in
      check_int "index round trip" i (Automaton.index_of_state a s);
      let cnt = ref 0 in
      Automaton.iter_row a i (fun eid d ->
          incr cnt;
          let e = Automaton.event_of_id a eid in
          check_int "row event id decodes" eid (Event.id e);
          (match Automaton.step a s e with
          | Some d' ->
              check_string "step agrees with row" (Automaton.state_of_index a d)
                d'
          | None -> Alcotest.fail "row transition missing from step");
          check_bool "step_index agrees with row" true
            (Automaton.step_index a i eid = Some d));
      check_int "out_degree" !cnt (Automaton.out_degree a i)
    done
  done

let test_digest_deterministic () =
  let a = random_automaton ~seed:7 ~name:"DG" in
  let d1 = Automaton.structural_digest a in
  check_string "cached call stable" d1 (Automaton.structural_digest a);
  (* an identically-constructed automaton digests identically within the
     process *)
  let b = random_automaton ~seed:7 ~name:"DG" in
  check_string "same structure, same digest" d1 (Automaton.structural_digest b);
  check_bool "automaton name participates" false
    (String.equal d1 (Automaton.structural_digest (Automaton.rename a "DG2")));
  (* products digest deterministically too (lazy names forced by the
     digest) *)
  let p1 = Compose.pair a (random_automaton ~seed:8 ~name:"DH") in
  let p2 = Compose.pair b (random_automaton ~seed:8 ~name:"DH") in
  check_string "product digest deterministic"
    (Automaton.structural_digest p1)
    (Automaton.structural_digest p2)

let test_unescape_state_name () =
  check_string "product escape undone" "Eval.Safe.Uncapped"
    (Automaton.unescape_state_name "Eval\\.Safe.Uncapped");
  check_string "escaped backslash" "a\\b"
    (Automaton.unescape_state_name "a\\\\b");
  check_string "plain name untouched" "plain"
    (Automaton.unescape_state_name "plain")

(* ------------------------------------------------------------------ *)
(* Parallel synthesis: supcon_par / supcon_modular / the bugfixed      *)
(* passes, pinned against their sequential references.                 *)
(* ------------------------------------------------------------------ *)

(* The bench's k-cluster plant family and shared budget spec, reduced:
   the canonical many-component workload for the modular engine. *)
let cluster_plant i =
  let e fmt = Printf.sprintf fmt i in
  Automaton.create ~marked:[ "Idle" ] ~name:(e "Cl%d") ~initial:"Idle"
    ~transitions:
      [
        ("Idle", Event.controllable (e "start%d"), "Busy");
        ("Busy", Event.uncontrollable (e "done%d"), "Idle");
        ("Busy", Event.uncontrollable (e "overheat%d"), "Hot");
        ("Hot", Event.controllable (e "cool%d"), "Idle");
      ]
    ()

let cluster_budget_spec ~k ~cap =
  let state j = Printf.sprintf "B%d" j in
  let transitions = ref [] in
  let add t = transitions := t :: !transitions in
  for i = 1 to k do
    let e fmt = Printf.sprintf fmt i in
    for j = 0 to cap - 1 do
      add (state j, Event.controllable (e "start%d"), state (j + 1));
      add (state j, Event.uncontrollable (e "overheat%d"), state j)
    done;
    for j = 1 to cap do
      add (state j, Event.uncontrollable (e "done%d"), state (j - 1));
      add (state j, Event.controllable (e "cool%d"), state (j - 1))
    done;
    add (state cap, Event.uncontrollable (e "overheat%d"), "Over")
  done;
  Automaton.create ~marked:[ state 0 ] ~forbidden:[ "Over" ]
    ~name:(Printf.sprintf "Bud%d" cap)
    ~initial:(state 0) ~transitions:!transitions ()

(* The tentpole's hard pin: for any job count, supcon_par returns a
   byte-identical result — same digest (hence same states, names and
   transitions), same stats, same Verify verdicts. *)
let test_supcon_par_matches_sequential () =
  for seed = 0 to 59 do
    let plant = random_automaton ~seed ~name:"PP" in
    let spec = random_automaton ~seed:(seed + 3000) ~name:"PS" in
    let seq = Synthesis.supcon ~plant ~spec in
    List.iter
      (fun jobs ->
        match (seq, Synthesis.supcon_par ~jobs ~plant ~spec ()) with
        | Error Synthesis.Empty_supervisor, Error Synthesis.Empty_supervisor ->
            ()
        | Ok (sa, ta), Ok (sb, tb) ->
            if
              Automaton.structural_digest sa
              <> Automaton.structural_digest sb
            then
              Alcotest.failf "seed %d jobs %d: supcon_par digest differs" seed
                jobs;
            if ta <> tb then
              Alcotest.failf "seed %d jobs %d: supcon_par stats differ" seed
                jobs;
            let verdict s = Verify.controllable ~plant ~supervisor:s = Ok () in
            if verdict sa <> verdict sb then
              Alcotest.failf "seed %d jobs %d: controllability verdicts differ"
                seed jobs
        | Ok _, Error _ ->
            Alcotest.failf "seed %d jobs %d: par empty, sequential not" seed
              jobs
        | Error _, Ok _ ->
            Alcotest.failf "seed %d jobs %d: sequential empty, par not" seed
              jobs)
      [ 1; 4 ]
  done

let test_supcon_par_cluster_family () =
  List.iter
    (fun (k, cap) ->
      let plant = Compose.all (List.init k (fun i -> cluster_plant (i + 1))) in
      let spec = cluster_budget_spec ~k ~cap in
      match
        ( Synthesis.supcon ~plant ~spec,
          Synthesis.supcon_par ~jobs:4 ~plant ~spec () )
      with
      | Ok (sa, ta), Ok (sb, tb) ->
          check_string
            (Printf.sprintf "k=%d digest identical" k)
            (Automaton.structural_digest sa)
            (Automaton.structural_digest sb);
          check_bool (Printf.sprintf "k=%d stats identical" k) true (ta = tb)
      | _ -> Alcotest.failf "k=%d: unexpected empty supervisor" k)
    [ (2, 1); (4, 3); (5, 4) ]

(* Modular synthesis never materializes the composed plant; its result
   is pinned to the monolithic one up to the (flat vs nested) naming. *)
let test_supcon_modular_matches_monolithic () =
  List.iter
    (fun (k, cap) ->
      let plants = List.init k (fun i -> cluster_plant (i + 1)) in
      let spec = cluster_budget_spec ~k ~cap in
      let mono = Synthesis.supcon ~plant:(Compose.all plants) ~spec in
      List.iter
        (fun jobs ->
          match (mono, Synthesis.supcon_modular ~jobs ~plants ~spec ()) with
          | Ok (sa, ta), Ok (sb, tb) ->
              check_bool
                (Printf.sprintf "k=%d jobs=%d isomorphic" k jobs)
                true
                (Automaton.isomorphic sa sb);
              check_bool
                (Printf.sprintf "k=%d jobs=%d stats" k jobs)
                true (ta = tb);
              check_bool
                (Printf.sprintf "k=%d jobs=%d nonblocking" k jobs)
                true
                (Verify.nonblocking sb = Ok ())
          | _ -> Alcotest.failf "k=%d jobs=%d: unexpected empty" k jobs)
        [ 1; 4 ])
    [ (2, 1); (3, 2); (4, 3) ]

(* Empty-supervisor edge case: the initial state is uncontrollably bad
   on every path, sequential and parallel alike. *)
let test_supcon_par_empty () =
  let breaks = Event.uncontrollable "par_breaks" in
  let plant =
    Automaton.create ~name:"PE" ~initial:"Up"
      ~transitions:[ ("Up", breaks, "Down") ]
      ()
  in
  let spec =
    Automaton.create ~forbidden:[ "Bad" ] ~name:"SE" ~initial:"Ok"
      ~transitions:[ ("Ok", breaks, "Bad") ]
      ()
  in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "jobs=%d empty" jobs)
        true
        (Synthesis.supcon_par ~jobs ~plant ~spec ()
        = Error Synthesis.Empty_supervisor))
    [ 1; 4 ]

(* A spec-private uncontrollable event is not a plant escape: the plant
   cannot generate it, so disabling it is free.  Pinned against the
   sequential engine, which encodes the same ownership rule. *)
let test_supcon_par_spec_private_uncontrollable () =
  let shared = Event.controllable "par_shared" in
  let private_u = Event.uncontrollable "par_spec_priv" in
  let plant =
    Automaton.create ~name:"PV" ~initial:"P0"
      ~transitions:[ ("P0", shared, "P1"); ("P1", shared, "P0") ]
      ()
  in
  let spec =
    Automaton.create ~marked:[ "S0" ] ~name:"SV" ~initial:"S0"
      ~transitions:[ ("S0", shared, "S1"); ("S1", private_u, "S0") ]
      ()
  in
  match
    (Synthesis.supcon ~plant ~spec, Synthesis.supcon_par ~jobs:4 ~plant ~spec ())
  with
  | Ok (sa, ta), Ok (sb, tb) ->
      check_string "digest identical" (Automaton.structural_digest sa)
        (Automaton.structural_digest sb);
      check_bool "stats identical" true (ta = tb);
      (* the private uncontrollable event must have survived synthesis *)
      check_bool "spec-private event kept" true
        (Event.Set.mem private_u (Automaton.alphabet sb))
  | _ -> Alcotest.fail "unexpected empty supervisor"

(* Reference for the mask-based Reach.trim: the pre-fix algorithm, which
   re-restricted the automaton and recomputed reachability every round. *)
let ref_trim a =
  let rec go a =
    let n = Automaton.num_states a in
    let acc = Reach.accessible_indices a in
    let coa = Reach.coaccessible_indices a in
    let keep = Array.init n (fun i -> acc.(i) && coa.(i)) in
    match Reach.restrict_indices a keep with
    | None -> None
    | Some a' -> if Automaton.num_states a' = n then Some a' else go a'
  in
  go a

let test_trim_matches_reference () =
  for seed = 0 to 59 do
    let a = random_automaton ~seed ~name:"TR" in
    match (Reach.trim a, ref_trim a) with
    | None, None -> ()
    | Some x, Some y ->
        if not (Automaton.isomorphic x y) then
          Alcotest.failf "seed %d: trim differs from reference" seed;
        if
          List.sort String.compare (Automaton.states x)
          <> List.sort String.compare (Automaton.states y)
        then Alcotest.failf "seed %d: trimmed state names differ" seed
    | Some _, None | None, Some _ ->
        Alcotest.failf "seed %d: trim None-ness differs" seed
  done

(* Balanced Compose.all is pinned to the old left fold: parallel
   composition is associative and commutative up to state renaming, so
   the results must be isomorphic with equal counts (names differ — the
   tree joins in size order). *)
let test_compose_all_matches_fold () =
  let check_family what comps =
    let balanced = Compose.all comps in
    let folded =
      List.fold_left Compose.pair (List.hd comps) (List.tl comps)
    in
    check_int
      (what ^ ": state count")
      (Automaton.num_states folded)
      (Automaton.num_states balanced);
    check_int
      (what ^ ": transition count")
      (Automaton.num_transitions folded)
      (Automaton.num_transitions balanced);
    check_bool (what ^ ": isomorphic") true
      (Automaton.isomorphic balanced folded)
  in
  check_family "clusters k=4" (List.init 4 (fun i -> cluster_plant (i + 1)));
  check_family "clusters k=5" (List.init 5 (fun i -> cluster_plant (i + 1)));
  for seed = 0 to 19 do
    check_family
      (Printf.sprintf "random seed %d" seed)
      [
        random_automaton ~seed ~name:"CA";
        random_automaton ~seed:(seed + 4000) ~name:"CB";
        random_automaton ~seed:(seed + 5000) ~name:"CC";
      ]
  done

(* ------------------------------------------------------------------ *)
(* Dot                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dot_output () =
  let dot = Dot.to_dot m1 in
  check_bool "digraph" true
    (String.length dot > 0
    && String.sub dot 0 7 = "digraph");
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "has initial arrow" true (contains "__init ->" dot);
  check_bool "uncontrollable marked" true (contains "finish1!" dot);
  check_bool "doublecircle for marked" true (contains "doublecircle" dot)

let test_dot_forbidden_rendering () =
  let a =
    Automaton.create ~forbidden:[ "Bad" ] ~name:"f" ~initial:"A"
      ~transitions:[ ("A", Event.uncontrollable "oops", "Bad") ]
      ()
  in
  let dot = Dot.to_dot a in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "red box" true (contains "color=red" dot)

let test_dot_unescaped_labels () =
  (* Node ids keep the exact (unique) escaped state name; labels render
     the human-readable unescaped form, and edge labels come from
     Event.pp. *)
  let e1 = Event.controllable "e1" and u1 = Event.uncontrollable "u1" in
  let a =
    Automaton.create ~name:"A" ~initial:"a.b"
      ~transitions:[ ("a.b", e1, "a.b") ]
      ()
  in
  let b =
    Automaton.create ~name:"B" ~initial:"c"
      ~transitions:[ ("c", e1, "c"); ("c", u1, "c") ]
      ()
  in
  let dot = Dot.to_dot (Compose.pair a b) in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (* state name is a\.b.c → DOT-escaped node id "a\\.b.c", readable
     label "a.b.c" *)
  check_bool "node id stays escaped" true (contains "\"a\\\\.b.c\"" dot);
  check_bool "label unescaped" true (contains "label=\"a.b.c\"" dot);
  check_bool "uncontrollable edge label via Event.pp" true
    (contains "label=\"u1!\"" dot);
  check_bool "controllable edge label plain" true (contains "label=\"e1\"" dot)

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "spectr_automata"
    [
      ( "event",
        [
          Alcotest.test_case "basics" `Quick test_event_basics;
          Alcotest.test_case "ordering" `Quick test_event_order;
          Alcotest.test_case "inconsistent controllability" `Quick
            test_event_inconsistent_controllability;
          Alcotest.test_case "interning" `Quick test_event_interning;
          Alcotest.test_case "pretty printing" `Quick test_event_pp;
        ] );
      ( "automaton",
        [
          Alcotest.test_case "counts" `Quick test_automaton_counts;
          Alcotest.test_case "step" `Quick test_automaton_step;
          Alcotest.test_case "unknown state" `Quick test_automaton_unknown_state;
          Alcotest.test_case "enabled" `Quick test_automaton_enabled;
          Alcotest.test_case "nondeterminism rejected" `Quick
            test_automaton_nondeterminism_rejected;
          Alcotest.test_case "conflicting controllability rejected" `Quick
            test_automaton_conflicting_controllability;
          Alcotest.test_case "duplicate transitions ok" `Quick
            test_automaton_duplicate_transition_ok;
          Alcotest.test_case "marked default" `Quick test_automaton_marked_default;
          Alcotest.test_case "marked explicit empty" `Quick
            test_automaton_marked_explicit_empty;
          Alcotest.test_case "unknown marked" `Quick test_automaton_unknown_marked;
          Alcotest.test_case "accepts" `Quick test_automaton_accepts;
          Alcotest.test_case "trace" `Quick test_automaton_trace;
          Alcotest.test_case "forbidden" `Quick test_automaton_forbidden;
          Alcotest.test_case "relabel" `Quick test_relabel_states;
          Alcotest.test_case "relabel collision" `Quick test_relabel_collision;
          Alcotest.test_case "isomorphic negative" `Quick test_isomorphic_negative;
          Alcotest.test_case "restrict" `Quick test_restrict_states;
          Alcotest.test_case "restrict drops initial" `Quick
            test_restrict_drop_initial;
        ] );
      ( "compose",
        [
          Alcotest.test_case "interleaving" `Quick test_compose_interleaving;
          Alcotest.test_case "synchronization" `Quick test_compose_synchronization;
          Alcotest.test_case "marking" `Quick test_compose_marking;
          Alcotest.test_case "alphabet union" `Quick test_compose_alphabet_union;
          Alcotest.test_case "compose all" `Quick test_compose_all;
          Alcotest.test_case "reachable only" `Quick test_compose_reachable_only;
          Alcotest.test_case "nested naming regression" `Quick
            test_compose_nested_naming;
          qc prop_compose_commutative_language;
          qc prop_compose_associative;
        ] );
      ( "reach",
        [
          Alcotest.test_case "accessible" `Quick test_accessible;
          Alcotest.test_case "coaccessible" `Quick test_coaccessible;
          Alcotest.test_case "trim" `Quick test_trim;
          Alcotest.test_case "trim fixpoint" `Quick test_trim_fixpoint;
          Alcotest.test_case "trim empty" `Quick test_trim_empty;
          qc prop_trim_idempotent;
        ] );
      ( "verify",
        [
          Alcotest.test_case "nonblocking positive" `Quick
            test_nonblocking_positive;
          Alcotest.test_case "nonblocking negative" `Quick
            test_nonblocking_negative;
          Alcotest.test_case "controllable positive" `Quick
            test_controllable_positive;
          Alcotest.test_case "controllable negative" `Quick
            test_controllable_negative;
          Alcotest.test_case "closed loop" `Quick test_closed_loop;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "small factory" `Quick test_supcon_small_factory;
          Alcotest.test_case "forbidden state" `Quick test_supcon_forbidden_state;
          Alcotest.test_case "empty supervisor" `Quick test_supcon_empty;
          Alcotest.test_case "supcon_exn" `Quick test_supcon_exn;
          Alcotest.test_case "loose spec permissive" `Quick
            test_supcon_maximally_permissive_when_spec_loose;
          qc prop_supcon_sound;
          qc prop_supcon_language_within_plant;
        ] );
      ( "indexed-core",
        [
          Alcotest.test_case "alphabet conflict reported at entry" `Quick
            test_alphabet_conflict_reported_at_entry;
          Alcotest.test_case "compose matches string reference" `Quick
            test_indexed_compose_matches_reference;
          Alcotest.test_case "restrict_indices matches reference" `Quick
            test_restrict_indices_matches_reference;
          Alcotest.test_case "index API round trip" `Quick
            test_index_api_roundtrip;
          Alcotest.test_case "structural digest deterministic" `Quick
            test_digest_deterministic;
          Alcotest.test_case "unescape_state_name" `Quick
            test_unescape_state_name;
        ] );
      ( "parallel-synthesis",
        [
          Alcotest.test_case "supcon_par matches sequential (60 seeds)" `Quick
            test_supcon_par_matches_sequential;
          Alcotest.test_case "supcon_par on the cluster family" `Quick
            test_supcon_par_cluster_family;
          Alcotest.test_case "supcon_modular matches monolithic" `Quick
            test_supcon_modular_matches_monolithic;
          Alcotest.test_case "supcon_par empty supervisor" `Quick
            test_supcon_par_empty;
          Alcotest.test_case "spec-private uncontrollable event" `Quick
            test_supcon_par_spec_private_uncontrollable;
          Alcotest.test_case "trim matches restrict-per-round reference" `Quick
            test_trim_matches_reference;
          Alcotest.test_case "balanced Compose.all matches fold" `Quick
            test_compose_all_matches_fold;
        ] );
      ( "dot",
        [
          Alcotest.test_case "dot output" `Quick test_dot_output;
          Alcotest.test_case "forbidden rendering" `Quick
            test_dot_forbidden_rendering;
          Alcotest.test_case "unescaped labels" `Quick test_dot_unescaped_labels;
        ] );
    ]
