(* Tests for the fleet layer (Spectr_fleet): node lifecycle and
   cap/report semantics, coordinator budget invariants, placer scoring,
   arrival determinism, and the fleet engine's two load-bearing
   properties — job-count-independent digests and global-cap compliance
   where the uncoordinated baseline violates. *)

open Spectr_platform
open Spectr_fleet
module Pool = Spectr_exec.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

let with_pool ~jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let make_node ?config ?(id = 0) ?(seed = 7L) ?(workload = Benchmarks.x264) ()
    =
  Node.create ?config ~id ~seed ~workload ()

(* ------------------------------------------------------------------ *)
(* Node                                                                *)
(* ------------------------------------------------------------------ *)

let test_node_lifecycle () =
  let node = make_node ~id:3 () in
  check_string "workload" "x264" (Node.workload_name node);
  check_bool "alive at birth" true (Node.alive node);
  check_float "initial cap is TDP" 5.0 (Node.cap node);
  check_float "x264 reference" 60. (Node.qos_ref node);
  Node.warm_up node;
  for _ = 1 to 20 do
    Node.tick node ~dt:0.05
  done;
  let r = Node.report node in
  check_int "report id" 3 r.Node.r_id;
  check_bool "reported alive" true r.Node.r_alive;
  check_bool "draws power" true (r.Node.r_power > 0.);
  check_bool "serves QoS" true (r.Node.r_qos > 0.);
  (* report drains the epoch accumulators. *)
  let r2 = Node.report node in
  check_float "drained power" 0. r2.Node.r_power;
  check_float "drained debt" 0. r2.Node.r_debt

let test_node_kill_restart () =
  let node = make_node () in
  Node.warm_up node;
  for _ = 1 to 10 do
    Node.tick node ~dt:0.05
  done;
  Node.checkpoint node;
  ignore (Node.report node);
  Node.kill node;
  check_bool "dead" false (Node.alive node);
  check_float "dead draws nothing" 0. (Node.last_true_power node);
  Node.tick node ~dt:0.05;
  Node.tick node ~dt:0.05;
  let r = Node.report node in
  check_float "dead node reports zero power" 0. r.Node.r_power;
  (* A dead node accrues one second of debt per second. *)
  check_float "full debt while dead" 0.1 r.Node.r_debt;
  check_int "kill counted" 1 r.Node.r_kills;
  (* kill is idempotent. *)
  Node.kill node;
  check_int "kill idempotent" 1 (Node.kills node);
  Node.restart node;
  check_bool "rebooted" true (Node.alive node);
  check_int "restart counted" 1 (Node.restarts node);
  Node.tick node ~dt:0.05;
  check_bool "serves again" true (Node.last_true_power node > 0.);
  (* restart is a no-op on a live node. *)
  Node.restart node;
  check_int "restart idempotent" 1 (Node.restarts node)

let test_node_cap_clamp () =
  let node = make_node () in
  Node.set_cap node 10.;
  check_float "clamped to TDP" 5.0 (Node.cap node);
  Node.set_cap node 0.2;
  check_float "clamped to floor" 1.0 (Node.cap node);
  Node.set_cap node 3.3;
  check_float "in-range cap" 3.3 (Node.cap node)

let test_node_work_items () =
  let node = make_node () in
  Node.add_load node ~tasks:2 ~duration_ticks:3;
  Node.add_load node ~tasks:1 ~duration_ticks:5;
  check_int "items stack" 3 (Node.background node);
  for _ = 1 to 3 do
    Node.tick node ~dt:0.05
  done;
  check_int "first item expired" 1 (Node.background node);
  for _ = 1 to 2 do
    Node.tick node ~dt:0.05
  done;
  check_int "all expired" 0 (Node.background node);
  (match Node.add_load node ~tasks:(-1) ~duration_ticks:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative tasks rejected");
  match Node.add_load node ~tasks:1 ~duration_ticks:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero duration rejected"

let test_node_items_survive_restart () =
  let node = make_node () in
  Node.add_load node ~tasks:3 ~duration_ticks:1000;
  Node.kill node;
  Node.restart node;
  (* The work queue outlives the node. *)
  check_int "items survive reboot" 3 (Node.background node)

(* End-to-end degraded-mode node: a reconfigurable node that loses a
   cluster must detect it (FDIR), hot-swap onto the degraded
   description, and report the reduced capacity to the coordinator. *)
let test_node_reconfigurable () =
  let node = Node.create ~reconfigurable:true ~id:0 ~seed:7L
      ~workload:Benchmarks.x264 () in
  let handle =
    match Node.reconfig_handle node with
    | Some h -> h
    | None -> Alcotest.fail "reconfigurable node must expose a handle"
  in
  check_bool "default nodes have no handle" true
    (Node.reconfig_handle (make_node ()) = None);
  (* Transient kinds are not permanent faults. *)
  (match Node.inject_permanent node (Faults.Dropout Faults.Power) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "transient kind must be rejected");
  Node.warm_up node;
  let r0 = Node.report node in
  check_float "healthy capacity is TDP" 5.0 r0.Node.r_max_power;
  check_bool "boots nominal" true
    (Spectr.Spectr_manager.Reconfig.status handle
    = Spectr.Spectr_manager.Reconfig.Nominal);
  Node.inject_permanent node (Faults.Cluster_dead 1);
  (* Detection needs 3.0 s of persistent residuals, plus the bounded
     swap window; 15 s of wall time is ample. *)
  for _ = 1 to 300 do
    Node.tick node ~dt:0.05
  done;
  check_bool "ends reconfigured" true
    (Spectr.Spectr_manager.Reconfig.status handle
    = Spectr.Spectr_manager.Reconfig.Reconfigured);
  check_bool "at least one hot-swap" true
    (Spectr.Spectr_manager.Reconfig.reconfigurations handle >= 1);
  check_bool "cluster 1 excluded" true
    (List.mem 1 (Spectr.Spectr_manager.Reconfig.excluded_clusters handle));
  let r1 = Node.report node in
  check_bool
    (Printf.sprintf "degraded capacity shrinks (%.3f)" r1.Node.r_max_power)
    true
    (r1.Node.r_max_power < 5.0 && r1.Node.r_max_power >= 1.0);
  check_bool "still serving QoS degraded" true (r1.Node.r_qos > 0.);
  (* A restart is a hardware swap: the replacement boots on the healthy
     description with full capacity and a fresh handle. *)
  Node.kill node;
  Node.restart node;
  let h2 =
    match Node.reconfig_handle node with
    | Some h -> h
    | None -> Alcotest.fail "restart must rebuild the handle"
  in
  check_bool "replacement boots nominal" true
    (Spectr.Spectr_manager.Reconfig.status h2
    = Spectr.Spectr_manager.Reconfig.Nominal);
  Node.tick node ~dt:0.05;
  let r2 = Node.report node in
  check_float "replacement reports full capacity" 5.0 r2.Node.r_max_power

(* ------------------------------------------------------------------ *)
(* Coordinator                                                         *)
(* ------------------------------------------------------------------ *)

let report ?(alive = true) ?(max_power = 5.) ?(cap = 5.) ?(power = 2.)
    ?(debt = 0.) id =
  {
    Node.r_id = id;
    r_alive = alive;
    r_max_power = max_power;
    r_cap = cap;
    r_power = power;
    r_sensor_power = power;
    r_qos = 50.;
    r_qos_ref = 60.;
    r_debt = debt;
    r_total_debt = debt;
    r_background = 0;
    r_workload = "x264";
    r_kills = 0;
    r_restarts = 0;
  }

let config = Node.default_config
let sum = Array.fold_left ( +. ) 0.

let test_coordinator_uncoordinated () =
  let caps =
    Coordinator.rebudget ~policy:Coordinator.Uncoordinated ~global_cap:10.
      ~config ~epoch_s:1.
      (Array.init 4 (fun i -> report i))
  in
  Array.iter (fun c -> check_float "TDP each" config.Node.node_tdp c) caps

let test_coordinator_static () =
  let caps =
    Coordinator.rebudget ~policy:Coordinator.Static_split ~global_cap:8.
      ~config ~epoch_s:1.
      (Array.init 4 (fun i -> report i))
  in
  let each = 8. *. (1. -. Coordinator.default_headroom) /. 4. in
  Array.iter (fun c -> check_float "even split" each c) caps

let test_coordinator_waterfill_budget () =
  (* Scarce budget: allocations respect [floor, tdp] and sum to at most
     the guardbanded budget. *)
  let reports =
    Array.init 8 (fun i ->
        report ~power:(1. +. (0.4 *. float_of_int i))
          ~debt:(if i mod 2 = 0 then 0.5 else 0.)
          i)
  in
  let global_cap = 14. in
  let caps =
    Coordinator.rebudget ~policy:Coordinator.Water_filling ~global_cap ~config
      ~epoch_s:1. reports
  in
  let budget = global_cap *. (1. -. Coordinator.default_headroom) in
  check_bool "sums under the guardbanded budget" true (sum caps <= budget);
  Array.iter
    (fun c ->
      check_bool "within [floor, tdp]" true
        (c >= config.Node.cap_floor && c <= config.Node.node_tdp))
    caps;
  (* A starved heavy node outranks a satisfied light one. *)
  check_bool "debt-weighted demand orders caps" true (caps.(6) > caps.(1))

let test_coordinator_waterfill_abundant () =
  (* Abundant budget: every node simply gets its demand. *)
  let reports = Array.init 4 (fun i -> report ~power:1.0 ~debt:0. i) in
  let caps =
    Coordinator.rebudget ~policy:Coordinator.Water_filling ~global_cap:1000.
      ~config ~epoch_s:1. reports
  in
  Array.iter (fun c -> check_float "demand = 1.05 x draw" 1.05 c) caps

let test_coordinator_waterfill_infeasible () =
  (* Budget below n x floor: every node holds the floor. *)
  let reports = Array.init 4 (fun i -> report i) in
  let caps =
    Coordinator.rebudget ~policy:Coordinator.Water_filling ~global_cap:2.
      ~config ~epoch_s:1. reports
  in
  Array.iter (fun c -> check_float "floor each" config.Node.cap_floor c) caps

let test_coordinator_dead_node_excluded () =
  let reports =
    [| report 0; report ~alive:false 1; report ~power:4. ~debt:1. 2 |]
  in
  let caps =
    Coordinator.rebudget ~policy:Coordinator.Water_filling ~global_cap:7.
      ~config ~epoch_s:1. reports
  in
  check_float "dead node is excluded" 0. caps.(1);
  check_bool "freed budget flows to the starved node" true
    (caps.(2) > caps.(0));
  let static =
    Coordinator.rebudget ~policy:Coordinator.Static_split ~global_cap:7.
      ~config ~epoch_s:1. reports
  in
  check_float "static split also excludes the dead node" 0. static.(1);
  check_float "static share divides among survivors only"
    (7. *. (1. -. Coordinator.default_headroom) /. 2.)
    static.(0)

let test_coordinator_kill_redistributes_within_epoch () =
  (* Satellite regression: killing a node must free its budget to the
     survivors in the very next rebudget call — one epoch, not a decay.
     Scarce budget so the water level binds and the redistribution is
     visible in the surviving nodes' caps. *)
  let mk alive = [| report ~power:4. 0; report ~power:4. ~alive 1 |] in
  let global_cap = 6. in
  let before =
    Coordinator.rebudget ~policy:Coordinator.Water_filling ~global_cap
      ~config ~epoch_s:1. (mk true)
  in
  let after =
    Coordinator.rebudget ~policy:Coordinator.Water_filling ~global_cap
      ~config ~epoch_s:1. (mk false)
  in
  let budget = global_cap *. (1. -. Coordinator.default_headroom) in
  check_bool "scarce before the kill" true (before.(0) < 4.);
  check_float "dead node allocated nothing" 0. after.(1);
  check_bool "survivor's cap grows in the same epoch" true
    (after.(0) > before.(0) +. 0.5);
  check_bool "still under the guardbanded budget" true (sum after <= budget)

let test_coordinator_degraded_capacity_capped () =
  (* A reconfigured node advertises a reduced r_max_power; its cap must
     not exceed it even when the budget is abundant, and the headroom it
     frees must reach the starved healthy node under scarcity. *)
  let abundant =
    Coordinator.rebudget ~policy:Coordinator.Water_filling ~global_cap:1000.
      ~config ~epoch_s:1.
      [| report ~max_power:2.5 ~power:4. ~debt:1. 0 |]
  in
  check_bool "abundant cap stays at degraded capacity" true
    (abundant.(0) <= 2.5 +. 1e-9);
  let reports =
    [|
      report ~max_power:2.0 ~power:4. ~debt:1. 0;
      report ~power:4. ~debt:1. 1;
    |]
  in
  let caps =
    Coordinator.rebudget ~policy:Coordinator.Water_filling ~global_cap:7.
      ~config ~epoch_s:1. reports
  in
  check_bool "degraded node capped at its capacity" true
    (caps.(0) <= 2.0 +. 1e-9);
  check_bool "healthy node takes the freed headroom" true
    (caps.(1) > caps.(0));
  let static =
    Coordinator.rebudget ~policy:Coordinator.Static_split ~global_cap:11.
      ~config ~epoch_s:1. reports
  in
  check_bool "static split respects capacity too" true
    (static.(0) <= 2.0 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Placer                                                              *)
(* ------------------------------------------------------------------ *)

let item ?(tasks = 1) ?(duration = 100) kind =
  { Arrivals.a_tasks = tasks; a_duration = duration; a_kind = kind }

let test_placer_affinity () =
  let reports =
    [|
      (let r = report 0 in
       { r with Node.r_workload = "canneal" });
      (let r = report 1 in
       { r with Node.r_workload = "x264" });
    |]
  in
  match Placer.assign ~reports [ item "x264" ] with
  | [ (i, _) ] -> check_int "prefers the affine node" 1 i
  | _ -> Alcotest.fail "one assignment"

let test_placer_spreads_burst () =
  (* Identical nodes: the first item takes index 0 (lowest-index tie
     break); pending load then pushes the second item to index 1. *)
  let reports = Array.init 2 (fun i -> report i) in
  match Placer.assign ~reports [ item "x264"; item "x264" ] with
  | [ (a, _); (b, _) ] ->
      check_int "tie-break lowest index" 0 a;
      check_int "burst spreads" 1 b
  | _ -> Alcotest.fail "two assignments"

let test_placer_skips_dead_and_indebted () =
  let reports =
    [|
      report ~alive:false 0; report ~debt:5. 1; report 2;
    |]
  in
  (match Placer.assign ~reports [ item "x264" ] with
  | [ (i, _) ] -> check_int "avoids dead and indebted" 2 i
  | _ -> Alcotest.fail "one assignment");
  (* Every node dead: the item is dropped, not misplaced. *)
  let dead = Array.init 2 (fun i -> report ~alive:false i) in
  check_bool "all dead drops the item" true
    (Placer.assign ~reports:dead [ item "x264" ] = [])

(* ------------------------------------------------------------------ *)
(* Arrivals                                                            *)
(* ------------------------------------------------------------------ *)

let test_arrivals_deterministic () =
  let a = Arrivals.generate ~seed:9 ~epoch:4 ~rate:5. in
  let b = Arrivals.generate ~seed:9 ~epoch:4 ~rate:5. in
  check_bool "same (seed, epoch) -> same items" true (a = b);
  check_int "integer rate arrives exactly" 5 (List.length a);
  let c = Arrivals.generate ~seed:9 ~epoch:5 ~rate:5. in
  check_bool "epochs draw distinct streams" true (a <> c);
  List.iter
    (fun it ->
      check_bool "valid tasks" true (it.Arrivals.a_tasks >= 1);
      check_bool "valid duration" true (it.Arrivals.a_duration >= 1);
      check_bool "known workload" true
        (Benchmarks.by_name it.Arrivals.a_kind <> None))
    a

(* ------------------------------------------------------------------ *)
(* Fleet engine                                                        *)
(* ------------------------------------------------------------------ *)

let small_spec =
  {
    Fleet.default_spec with
    Fleet.nodes = 12;
    epochs = 5;
    ticks_per_epoch = 20;
    global_cap = 12. *. 1.5;
    (* 3 shards of 4 and one of... 12/5 -> shards of 5,5,2: uneven on
       purpose, the partition must still be job-count independent. *)
    shard_size = 5;
    kill_rate = 1.0;
    down_epochs = 1;
    arrival_rate = 2.;
  }

let test_fleet_determinism_across_jobs () =
  let r1 = with_pool ~jobs:1 (fun pool -> Fleet.run ~pool small_spec) in
  let r4 = with_pool ~jobs:4 (fun pool -> Fleet.run ~pool small_spec) in
  check_string "digest job-count independent" r1.Fleet.digest r4.Fleet.digest;
  check_float "peak identical" r1.Fleet.peak_fleet_power
    r4.Fleet.peak_fleet_power;
  check_float "debt identical" r1.Fleet.total_debt r4.Fleet.total_debt;
  check_int "violations identical" r1.Fleet.violation_ticks
    r4.Fleet.violation_ticks;
  (* And a rerun on the same pool size reproduces exactly. *)
  let r1' = with_pool ~jobs:1 (fun pool -> Fleet.run ~pool small_spec) in
  check_string "rerun reproduces" r1.Fleet.digest r1'.Fleet.digest

let test_fleet_compliance_vs_baseline () =
  let spec policy = { small_spec with Fleet.kill_rate = 0.; policy } in
  let unco =
    with_pool ~jobs:1 (fun pool ->
        Fleet.run ~pool (spec Coordinator.Uncoordinated))
  in
  let water =
    with_pool ~jobs:1 (fun pool ->
        Fleet.run ~pool (spec Coordinator.Water_filling))
  in
  check_bool "baseline violates the global cap" true
    (unco.Fleet.violation_ticks > 0);
  check_int "coordinator holds the global cap" 0 water.Fleet.violation_ticks;
  check_bool "coordinated peak under the cap" true
    (water.Fleet.peak_fleet_power
    <= small_spec.Fleet.global_cap *. Spectr.Metrics.power_allowance)

let test_fleet_kills_and_restarts () =
  let r = with_pool ~jobs:2 (fun pool -> Fleet.run ~pool small_spec) in
  check_bool "kill plan fired" true (r.Fleet.kills > 0);
  check_bool "downed nodes rebooted" true (r.Fleet.restarts > 0);
  check_bool "restarts bounded by kills" true
    (r.Fleet.restarts <= r.Fleet.kills);
  check_bool "deaths cost QoS" true (r.Fleet.qos_attainment < 1.);
  check_bool "placements happened" true (r.Fleet.placements > 0);
  check_int "tick accounting" (5 * 20) r.Fleet.total_ticks

let test_fleet_validation () =
  match
    with_pool ~jobs:1 (fun pool ->
        Fleet.run ~pool { small_spec with Fleet.nodes = 0 })
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero nodes rejected"

let test_fleet_obs_counters () =
  (* With instrumentation enabled, the engine surfaces its counters;
     the run itself must not depend on them. *)
  Fun.protect
    ~finally:(fun () ->
      Spectr_obs.disable ();
      Spectr_obs.reset ())
    (fun () ->
      Spectr_obs.reset ();
      Spectr_obs.enable ();
      let r = with_pool ~jobs:1 (fun pool -> Fleet.run ~pool small_spec) in
      let v name =
        match Spectr_obs.Counters.by_name name with
        | Some v -> v
        | None -> Alcotest.fail (name ^ " not registered")
      in
      check_int "epoch counter" small_spec.Fleet.epochs (v "fleet.epochs");
      check_int "tick counter" small_spec.Fleet.ticks_per_epoch
        (v "fleet.ticks" / small_spec.Fleet.epochs);
      check_int "kill counter" r.Fleet.kills (v "fleet.kills");
      check_int "restart counter" r.Fleet.restarts (v "fleet.restarts");
      check_int "placement counter" r.Fleet.placements (v "fleet.placements");
      check_bool "rebudget moves counted" true
        (v "fleet.rebudget_moves" > 0))

let () =
  Alcotest.run "fleet"
    [
      ( "node",
        [
          Alcotest.test_case "lifecycle and reporting" `Quick
            test_node_lifecycle;
          Alcotest.test_case "kill and restart" `Quick test_node_kill_restart;
          Alcotest.test_case "cap clamping" `Quick test_node_cap_clamp;
          Alcotest.test_case "work items" `Quick test_node_work_items;
          Alcotest.test_case "reconfigurable degraded capacity" `Quick
            test_node_reconfigurable;
          Alcotest.test_case "items survive restart" `Quick
            test_node_items_survive_restart;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "uncoordinated" `Quick
            test_coordinator_uncoordinated;
          Alcotest.test_case "static split" `Quick test_coordinator_static;
          Alcotest.test_case "water-filling budget" `Quick
            test_coordinator_waterfill_budget;
          Alcotest.test_case "abundant budget" `Quick
            test_coordinator_waterfill_abundant;
          Alcotest.test_case "infeasible budget" `Quick
            test_coordinator_waterfill_infeasible;
          Alcotest.test_case "dead node excluded" `Quick
            test_coordinator_dead_node_excluded;
          Alcotest.test_case "kill redistributes within one epoch" `Quick
            test_coordinator_kill_redistributes_within_epoch;
          Alcotest.test_case "degraded capacity capped" `Quick
            test_coordinator_degraded_capacity_capped;
        ] );
      ( "placer",
        [
          Alcotest.test_case "affinity" `Quick test_placer_affinity;
          Alcotest.test_case "burst spreading" `Quick
            test_placer_spreads_burst;
          Alcotest.test_case "dead and indebted skipped" `Quick
            test_placer_skips_dead_and_indebted;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "deterministic stream" `Quick
            test_arrivals_deterministic;
        ] );
      ( "engine",
        [
          Alcotest.test_case "determinism across jobs" `Slow
            test_fleet_determinism_across_jobs;
          Alcotest.test_case "compliance vs baseline" `Slow
            test_fleet_compliance_vs_baseline;
          Alcotest.test_case "kills and restarts" `Slow
            test_fleet_kills_and_restarts;
          Alcotest.test_case "spec validation" `Quick test_fleet_validation;
          Alcotest.test_case "obs counters" `Slow test_fleet_obs_counters;
        ] );
    ]
