.PHONY: all build test fmt bench robustness check clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting gate: dune files must be @fmt-clean (OCaml sources are
# exempt in dune-project — the container carries no ocamlformat).
fmt:
	dune build @fmt

bench:
	dune exec bench/main.exe

robustness:
	dune exec bench/main.exe -- robustness

# What CI runs.
check: build fmt test

clean:
	dune clean
