.PHONY: all build test fmt bench bench-smoke robustness check clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting gate: dune files must be @fmt-clean (OCaml sources are
# exempt in dune-project — the container carries no ocamlformat).
fmt:
	dune build @fmt

bench:
	dune exec bench/main.exe

# One small synthesis-scale cell, timing columns suppressed — the shape
# check CI runs (see .github/workflows/ci.yml).
bench-smoke:
	dune exec bench/main.exe -- synthesis-scale --smoke

robustness:
	dune exec bench/main.exe -- robustness

# What CI runs.
check: build fmt test

clean:
	dune clean
