.PHONY: all build test fmt bench bench-smoke obs-smoke chaos-smoke fleet-smoke platform-smoke synth-smoke reconfig-smoke robustness check clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting gate: dune files must be @fmt-clean (OCaml sources are
# exempt in dune-project — the container carries no ocamlformat).
fmt:
	dune build @fmt

bench:
	dune exec bench/main.exe

# One small synthesis-scale cell plus the tick-kernel throughput gates
# (0 B/call steady-state allocation, batch-vs-one-shot trace digest
# agreement), timing columns suppressed — the shape check CI runs (see
# .github/workflows/ci.yml).
bench-smoke:
	dune exec bench/main.exe -- synthesis-scale throughput --smoke

robustness:
	dune exec bench/main.exe -- robustness

# Observability smoke: run a scenario with the obs layer on, check the
# load-bearing counters are nonzero and the exported decision log is
# non-empty, well-formed JSONL (parse validated when python3 exists).
obs-smoke:
	dune exec bin/spectr_cli.exe -- scenario -m spectr -b x264 --obs \
	  --obs-jsonl /tmp/spectr-obs.jsonl > /tmp/spectr-obs.txt
	grep -Eq "supervisor.steps +[1-9]" /tmp/spectr-obs.txt
	grep -Eq "supervisor.events_fired +[1-9]" /tmp/spectr-obs.txt
	grep -Eq "synth_cache.misses +[1-9]" /tmp/spectr-obs.txt
	test -s /tmp/spectr-obs.jsonl
	if command -v python3 >/dev/null; then \
	  python3 -c "import json,sys; [json.loads(l) for l in open('/tmp/spectr-obs.jsonl')]"; \
	fi

# Chaos smoke: a fixed-seed 16-cell campaign of power-sensor faults
# against guarded and unguarded SPECTR.  Passes only when SPECTR+G
# survives every cell AND unguarded SPECTR violates at least once
# (spectr_cli exits 3 / 4 otherwise); each finding is shrunk to a
# reproducer in chaos-artifacts/ and replayed to pin digest-exact
# determinism.  CI uploads chaos-artifacts/ on failure.
chaos-smoke:
	rm -rf chaos-artifacts
	dune exec bin/spectr_cli.exe -- chaos --seed 3 --cells 16 \
	  --variants spectr+g,spectr --kinds dropout:power,stuck:power \
	  --fail-on spectr+g --require-violation spectr \
	  --artifact-dir chaos-artifacts
	for f in chaos-artifacts/*.repro; do \
	  dune exec bin/spectr_cli.exe -- replay $$f || exit 1; \
	done

# Fleet smoke: the small fleet bench with its built-in gates — the
# uncoordinated baseline must break the global cap, water-filling must
# hold it (0 violation ticks), and a forced 1-job pool must match a
# forced 4-job pool in-process.  On top of that, the full stdout under
# SPECTR_JOBS=1 and SPECTR_JOBS=4 must be byte-identical — digests,
# floats, everything — which is the cross-process determinism gate.
fleet-smoke:
	SPECTR_JOBS=1 dune exec bench/main.exe -- fleet --smoke > /tmp/spectr-fleet-j1.txt
	SPECTR_JOBS=4 dune exec bench/main.exe -- fleet --smoke > /tmp/spectr-fleet-j4.txt
	diff /tmp/spectr-fleet-j1.txt /tmp/spectr-fleet-j4.txt

# Parallel-synthesis smoke: the sharded supcon engine is pinned
# byte-identical to the sequential path (digest + stats gates inside the
# bench), and the whole smoke output must not depend on SPECTR_JOBS.
# Includes one mid-size modular row under a wall-clock budget.
synth-smoke:
	SPECTR_JOBS=1 dune exec bench/main.exe -- synthesis-scale --smoke > /tmp/spectr-synth-j1.txt
	SPECTR_JOBS=4 dune exec bench/main.exe -- synthesis-scale --smoke > /tmp/spectr-synth-j4.txt
	diff /tmp/spectr-synth-j1.txt /tmp/spectr-synth-j4.txt
	grep -Eq '^ +4 +3 +81 +89 +33$$' /tmp/spectr-synth-j4.txt
	grep -q 'isomorphic to monolithic at jobs=1 and 4' /tmp/spectr-synth-j4.txt
	grep -q 'modular k=10 cap=6: product 39045, supervisor 12585' /tmp/spectr-synth-j4.txt

# Platform smoke: the data-driven platform layer end to end.  Built-in
# descriptions list and validate (`platforms` digests each one), a
# short scenario runs on every built-in shape (2-cluster board,
# 3-cluster pixel8pro, generated k3), the exynos5422 trace CSV is
# pinned byte-for-byte against the pre-refactor build, and every file
# in the malformed-CSV corpus is rejected with exit code 2 and a
# line-numbered parse error.
platform-smoke:
	dune exec bin/spectr_cli.exe -- platforms
	dune exec bin/spectr_cli.exe -- platforms --platform pixel8pro
	dune exec bin/spectr_cli.exe -- scenario -m spectr -b x264 \
	  --platform exynos5422 --csv /tmp/spectr-platform-exynos.csv > /dev/null
	dune exec bin/spectr_cli.exe -- scenario -m spectr -b x264 \
	  --platform pixel8pro > /dev/null
	dune exec bin/spectr_cli.exe -- scenario -m spectr -b x264 \
	  --platform k3 > /dev/null
	echo "ab3b5b5ef6ec4920c18d5f0a4117cbc1  /tmp/spectr-platform-exynos.csv" \
	  | md5sum -c -
	for f in test/platforms/bad/*.csv; do \
	  dune exec bin/spectr_cli.exe -- platforms --platform $$f; \
	  code=$$?; \
	  [ $$code -eq 2 ] || { echo "$$f: expected exit 2, got $$code"; exit 1; }; \
	done

# Reconfiguration smoke: degraded-mode self-healing end to end.
# Part 1 — the reconfig bench table (exynos cells only under --smoke):
# SPECTR+R must end every permanent-fault cell reconfigured with
# bounded excess while SPECTR+G is left in open-loop fallback with a
# >2x QoS gap (the PASS line), and stdout must be byte-identical under
# SPECTR_JOBS=1 and 4 (re-synthesis wall times go to stderr).
# Part 2 — a fixed-seed chaos campaign in which EVERY cell latches one
# permanent fault: SPECTR+R must stay invariant-clean (exit 3
# otherwise), every cell must end on the reconfigured rung of the FDIR
# ladder, and the campaign summary must also be job-count-independent.
# Findings (if any) are shrunk into reconfig-artifacts/, which CI
# uploads on failure.
reconfig-smoke:
	SPECTR_JOBS=1 dune exec bench/main.exe -- reconfig --smoke 2>/dev/null > /tmp/spectr-reconfig-j1.txt
	SPECTR_JOBS=4 dune exec bench/main.exe -- reconfig --smoke 2>/dev/null > /tmp/spectr-reconfig-j4.txt
	diff /tmp/spectr-reconfig-j1.txt /tmp/spectr-reconfig-j4.txt
	grep -q '^  PASS' /tmp/spectr-reconfig-j4.txt
	rm -rf reconfig-artifacts
	SPECTR_JOBS=1 dune exec bin/spectr_cli.exe -- chaos --seed 11 --cells 12 \
	  --variants spectr+r --kinds spike:qos:4 --max-faults 1 --kill-prob 0 \
	  --reconfig-prob 1 --fail-on spectr+r --artifact-dir reconfig-artifacts \
	  > /tmp/spectr-reconfig-chaos-j1.txt
	SPECTR_JOBS=4 dune exec bin/spectr_cli.exe -- chaos --seed 11 --cells 12 \
	  --variants spectr+r --kinds spike:qos:4 --max-faults 1 --kill-prob 0 \
	  --reconfig-prob 1 --fail-on spectr+r --artifact-dir reconfig-artifacts \
	  > /tmp/spectr-reconfig-chaos-j4.txt
	diff /tmp/spectr-reconfig-chaos-j1.txt /tmp/spectr-reconfig-chaos-j4.txt
	grep -q 'reconfig drills: 12 SPECTR+R cells — 12 end reconfigured' \
	  /tmp/spectr-reconfig-chaos-j4.txt

# What CI runs.
check: build fmt test obs-smoke chaos-smoke fleet-smoke platform-smoke synth-smoke reconfig-smoke

clean:
	dune clean
