(* Reconfiguration table: permanent fault classes × platform
   descriptions × three managers — self-healing SPECTR+R (FDIR plus
   supervisor re-synthesis), guarded SPECTR+G (detects and falls back,
   never reconfigures) and unguarded SPECTR.

   Each cell runs a 12 s x264 scenario at the full 5 W envelope with one
   PERMANENT fault latched at t = 2 s (a dead secondary cluster, that
   cluster's power sensor dead, or a permanently latched DVFS rail),
   followed by a 4-task background disturbance in the last 4 s.  Unlike
   the robustness table's transient faults, these never clear: the only
   way back to closed-loop control is to re-derive the supervisor for
   the degraded description.  Reported per cell:

   - excess: time spent more than 5 % above the envelope after the
     FDIR ladder has had time to settle (onset 2 s + 3 s detection +
     swap window + guard recovery dwell ≈ 7 s),
   - qos: mean heartbeat rate over the final 3 s as a fraction of the
     reference — re-convergence, or the cost of open-loop fallback,
   - for SPECTR+R the hot-swap count and final FDIR-ladder rung; for
     the guarded managers whether the watchdog is still degraded at the
     end of the run.

   The bench passes when SPECTR+R ends every cell reconfigured (at
   least one hot-swap, bounded excess) while SPECTR+G is left in
   open-loop fallback — with the QoS gap visible — in at least one.

   Re-synthesis wall times go to stderr: stdout stays byte-identical
   across SPECTR_JOBS settings (pinned by `make reconfig-smoke`). *)

open Spectr_platform

let smoke = ref false
let dt = 0.05
let tdp = 5.0
let onset_s = 2.0

(* Onset + FDIR permanent verdict (3 s of persistence) + swap window +
   guard recovery dwell, rounded up. *)
let settle_s = 7.0
let total_s = 12.0

let platforms () =
  if !smoke then [ Platform_desc.exynos5422 ]
  else
    [ Platform_desc.exynos5422; Platform_desc.pixel8pro;
      Platform_desc.k_cluster 4 ]

(* First non-host cluster: the faults target a secondary so every
   manager keeps a live host — SPECTR+R's recoverable regime. *)
let secondary p =
  let host = Platform_desc.host p in
  let rec go i = if i = host then go (i + 1) else i in
  go 0

let classes p =
  [
    ("cluster dead", Faults.Cluster_dead (secondary p));
    ("power sensor dead", Faults.Sensor_dead (Power_cluster (secondary p)));
    ("dvfs latched", Faults.Dvfs_stuck_permanent);
  ]

let config_for platform fault =
  let phase name ~duration_s ~envelope ~background_tasks ~faults =
    {
      Spectr.Scenario.phase_name = name;
      duration_s;
      envelope;
      background_tasks;
      phase_faults = faults;
    }
  in
  {
    (Spectr.Scenario.default_config ~platform Benchmarks.x264) with
    Spectr.Scenario.phases =
      [
        phase "healthy-then-fault" ~duration_s:8. ~envelope:tdp
          ~background_tasks:0
          ~faults:[ Faults.permanent fault ~start_s:onset_s ];
        (* A load disturbance AFTER the fault: a reconfigured manager
           must still regulate on the degraded plant, not merely idle. *)
        phase "disturb" ~duration_s:4. ~envelope:tdp ~background_tasks:4
          ~faults:[];
      ];
  }

type cell = {
  finite : bool;
  excess_s : float;
  qos_frac : float;  (* mean qos over the last 3 s / reference *)
  swaps : int;  (* SPECTR+R hot-swaps; 0 elsewhere *)
  rung : string option;  (* SPECTR+R final ladder rung *)
  stuck_degraded : bool;  (* guard still in fallback at the end *)
}

let evaluate ~qos_ref ~trace ~handle ~guards =
  let time = Trace.column trace "time" in
  let power =
    if List.mem "true_power" (Trace.columns trace) then
      Trace.column trace "true_power"
    else Trace.column trace "power"
  in
  let qos = Trace.column trace "qos" in
  let envelope = Trace.column trace "envelope" in
  let n = Array.length time in
  let finite = ref true in
  let excess_s = ref 0. in
  let qos_sum = ref 0. and qos_n = ref 0 in
  for i = 0 to n - 1 do
    if not (Float.is_finite power.(i) && Float.is_finite qos.(i)) then
      finite := false;
    if time.(i) >= settle_s && power.(i) > envelope.(i) *. 1.05 then
      excess_s := !excess_s +. dt;
    if time.(i) >= total_s -. 3.0 then begin
      qos_sum := !qos_sum +. qos.(i);
      incr qos_n
    end
  done;
  {
    finite = !finite;
    excess_s = !excess_s;
    qos_frac =
      (if !qos_n = 0 then 0.
       else !qos_sum /. float_of_int !qos_n /. qos_ref);
    swaps =
      (match handle with
      | None -> 0
      | Some h -> Spectr.Spectr_manager.Reconfig.reconfigurations h);
    rung =
      Option.map
        (fun h -> Spectr.Spectr_manager.Reconfig.(status_label (status h)))
        handle;
    stuck_degraded =
      (match guards with
      | None -> false
      | Some g -> Spectr.Guarded.degraded g);
  }

(* Constructors, not instances: each grid cell builds its own manager
   inside its parallel task. *)
let manager_specs platform =
  [
    ( "SPECTR+R",
      fun () ->
        let mgr, h = Spectr.Spectr_manager.make_reconfigurable ~platform () in
        (mgr, Some h, Some (Spectr.Spectr_manager.Reconfig.guard h)) );
    ( "SPECTR+G",
      fun () ->
        let guards =
          Spectr.Guarded.create
            ~clusters:(Platform_desc.num_clusters platform) ()
        in
        let mgr, _ = Spectr.Spectr_manager.make ~guards ~platform () in
        (mgr, None, Some guards) );
    ( "SPECTR",
      fun () ->
        let mgr, _ = Spectr.Spectr_manager.make ~platform () in
        (mgr, None, None) );
  ]

let pp_cell c =
  let tail =
    match c.rung with
    | Some rung -> Printf.sprintf "  (%d swap%s, ends %s)" c.swaps
        (if c.swaps = 1 then "" else "s") rung
    | None when c.stuck_degraded -> "  (watchdog still degraded at end)"
    | None -> ""
  in
  Printf.sprintf "exc %4.1fs  qos %3.0f%%%s" c.excess_s
    (100. *. c.qos_frac) tail

let run () =
  Util.heading
    "Reconfiguration: permanent faults x platforms, x264 (5 W envelope, \
     fault latched at 2 s, background disturbance 8-12 s)";
  let cell_inputs =
    List.concat_map
      (fun platform ->
        List.concat_map
          (fun (class_name, fault) ->
            List.map
              (fun spec -> (platform, class_name, fault, spec))
              (manager_specs platform))
          (classes platform))
      (platforms ())
  in
  let cells_flat =
    Spectr_exec.Parmap.map
      (fun (platform, class_name, fault, (mgr_name, make)) ->
        let cfg = config_for platform fault in
        let manager, handle, guards = make () in
        let trace = Spectr.Scenario.run ~manager cfg in
        (match handle with
        | Some h when Spectr.Spectr_manager.Reconfig.reconfigurations h > 0
          ->
            (* Wall time, stderr only: stdout must not depend on load. *)
            Printf.eprintf "reconfig: %s/%s re-synthesis %.1f ms\n%!"
              (Platform_desc.name platform)
              class_name
              (1000. *. Spectr.Spectr_manager.Reconfig.last_resynth_s h)
        | _ -> ());
        ( Platform_desc.name platform,
          class_name,
          mgr_name,
          evaluate ~qos_ref:cfg.Spectr.Scenario.qos_ref ~trace ~handle
            ~guards ))
      cell_inputs
  in
  let last_platform = ref "" and last_class = ref "" in
  List.iter
    (fun (platform, class_name, mgr_name, c) ->
      if platform <> !last_platform then begin
        Util.subheading platform;
        last_platform := platform;
        last_class := ""
      end;
      if class_name <> !last_class then begin
        Printf.printf "  %s\n" class_name;
        last_class := class_name
      end;
      Printf.printf "    %-9s %s\n" mgr_name (pp_cell c))
    cells_flat;
  let r_cells =
    List.filter_map
      (fun (_, _, m, c) -> if m = "SPECTR+R" then Some c else None)
      cells_flat
  in
  let g_fallback_with_gap =
    List.exists
      (fun (p, cl, m, c) ->
        m = "SPECTR+G" && c.stuck_degraded
        && List.exists
             (fun (p', cl', m', c') ->
               m' = "SPECTR+R" && p' = p && cl' = cl
               && c'.qos_frac > 2. *. c.qos_frac)
             cells_flat)
      cells_flat
  in
  let r_ok =
    List.for_all
      (fun c ->
        c.finite && c.swaps >= 1 && c.rung = Some "reconfigured"
        && c.excess_s <= 1.0)
      r_cells
  in
  Util.subheading "verdict";
  Printf.printf
    "  SPECTR+R reconfigures (>= 1 hot-swap, bounded excess) in all %d \
     cells: %b\n"
    (List.length r_cells) r_ok;
  Printf.printf
    "  SPECTR+G left in open-loop fallback with a >2x QoS gap somewhere: \
     %b\n"
    g_fallback_with_gap;
  Printf.printf "  %s\n"
    (if r_ok && g_fallback_with_gap then "PASS" else "FAIL")
