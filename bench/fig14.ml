(* Figure 14: steady-state error (QoS and power) for every benchmark,
   manager and phase.  Positive = under the reference (power saved / QoS
   missed); negative = exceeding the reference.

   The full benchmark x manager grid fans out across the pool, one task
   per cell.  Every cell constructs a fresh manager — the pre-parallel
   harness reused the same four manager instances across all eight
   benchmarks, leaking controller/supervisor state between scenarios. *)

open Spectr_platform

let run () =
  Util.heading
    "Figure 14: steady-state error (%) per benchmark x manager x phase";
  let specs = Util.grid_specs () in
  let cells =
    List.concat_map
      (fun w -> List.map (fun spec -> (w, spec)) specs)
      Benchmarks.all_qos
  in
  let metrics_flat =
    Spectr_exec.Parmap.map
      (fun (w, (name, platform, make_manager)) ->
        let cfg = Spectr.Scenario.default_config ~platform w in
        let trace = Spectr.Scenario.run ~manager:(make_manager ()) cfg in
        (name, Spectr.Metrics.per_phase ~trace ~config:cfg))
      cells
  in
  (* Regroup the flat, submission-ordered results by benchmark. *)
  let per_bench = List.length specs in
  let results =
    List.mapi
      (fun i w ->
        ( w.Workload.name,
          List.filteri
            (fun j _ -> j / per_bench = i)
            metrics_flat ))
      Benchmarks.all_qos
  in
  let manager_names = List.map (fun (name, _, _) -> name) specs in
  let table ?(fmt = format_of_string " %+9.1f") phase extract label =
    Util.subheading label;
    Printf.printf "%-14s" "benchmark";
    List.iter (fun m -> Printf.printf " %9s" m) manager_names;
    print_newline ();
    List.iter
      (fun (bench, per_manager) ->
        Printf.printf "%-14s" bench;
        List.iter
          (fun (_, metrics) -> Printf.printf fmt (extract metrics phase))
          per_manager;
        print_newline ())
      results
  in
  let qos m phase = Spectr.Metrics.qos_of m phase in
  let power m phase = Spectr.Metrics.power_of m phase in
  table "safe" qos "(a) QoS steady-state error, Phase 1 (safe)";
  table "safe" power "(b) power steady-state error, Phase 1 (safe)";
  table "emergency" qos "(c) QoS steady-state error, Phase 2 (emergency)";
  table "emergency" power "(d) power steady-state error, Phase 2 (emergency)";
  table "disturbance" qos "(e) QoS steady-state error, Phase 3 (disturbance)";
  table "disturbance" power
    "(f) power steady-state error, Phase 3 (disturbance)";
  let energy metrics phase =
    (List.find (fun m -> m.Spectr.Metrics.phase_name = phase) metrics)
      .Spectr.Metrics.energy_per_heartbeat_j
  in
  table ~fmt:(format_of_string " %9.4f") "safe" energy
    "(g, extension) energy per unit of QoS work, Phase 1 (J/heartbeat)";
  print_endline
    "\nShape check (paper): in (a)/(b) SPECTR and MM-Perf save power while\n\
     meeting QoS and MM-Pow/FS consume the budget while exceeding QoS; in\n\
     (e)/(f) MM-Perf has the best QoS but violates the TDP (negative\n\
     power error) while the others sit at or under the limit."
