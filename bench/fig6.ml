(* Figure 6: multiply-add operations required per MIMO controller
   invocation as core count grows, for model orders 2, 4 and 8.  The
   per-core-count rows are computed on the pool (trivially cheap, but it
   keeps every driver on the same compute-then-print discipline). *)

let curve_cores = [ 2; 4; 8; 12; 16; 24; 32; 40; 48; 56; 64; 70 ]
let invocation_cores = [ 2; 8; 32; 70 ]

let run () =
  Util.heading "Figure 6: MIMO operation count vs core count";
  let curve_rows =
    Spectr_exec.Parmap.map
      (fun cores ->
        ( cores,
          Spectr.Ops_cost.paper_curve ~cores ~order:2,
          Spectr.Ops_cost.paper_curve ~cores ~order:4,
          Spectr.Ops_cost.paper_curve ~cores ~order:8 ))
      curve_cores
  in
  Printf.printf "%8s %14s %14s %14s\n" "#cores" "order 2" "order 4" "order 8";
  List.iter
    (fun (cores, o2, o4, o8) ->
      Printf.printf "%8d %14.3e %14.3e %14.3e\n" cores o2 o4 o8)
    curve_rows;
  Printf.printf
    "\nPer-invocation (Eq. 1-2 matrix-vector) counts for reference:\n";
  let invocation_rows =
    Spectr_exec.Parmap.map
      (fun cores ->
        ( cores,
          Spectr.Ops_cost.invocation_ops ~cores ~order:2,
          Spectr.Ops_cost.invocation_ops ~cores ~order:4,
          Spectr.Ops_cost.invocation_ops ~cores ~order:8 ))
      invocation_cores
  in
  Printf.printf "%8s %14s %14s %14s\n" "#cores" "order 2" "order 4" "order 8";
  List.iter
    (fun (cores, o2, o4, o8) ->
      Printf.printf "%8d %14d %14d %14d\n" cores o2 o4 o8)
    invocation_rows;
  print_endline
    "\nShape check (paper): superlinear growth with core count; the model\n\
     order becomes insignificant once #cores >> order."
