(* Figure 12: the supervisor synthesis pipeline on the Exynos case study
   — sub-plant models, synchronous composition, three-band specification,
   synthesized supervisor, and the two §4.3.4 property checks. *)

open Spectr_automata

let describe name a =
  Printf.printf "  %-24s %3d states %3d transitions  (marked: %s%s)\n" name
    (Automaton.num_states a)
    (Automaton.num_transitions a)
    (String.concat "," (Automaton.marked a))
    (match Automaton.forbidden a with
    | [] -> ""
    | f -> "; forbidden: " ^ String.concat "," f)

let run () =
  Util.heading "Figure 12: supervisor synthesis for the Exynos case study";
  Util.subheading "(a) sub-plant models";
  describe "QoS management" Spectr.Plant_model.qos_management;
  describe "power capping" Spectr.Plant_model.power_capping;
  Util.subheading "(b) composed plant (automatic, || operator)";
  let plant = Spectr.Plant_model.composed () in
  describe "QoSManagement||PowerCapping" plant;
  Util.subheading "(c) intended-behaviour specification";
  describe "three-band capping" Spectr.Spec.three_band;
  Util.subheading "(d) synthesized supervisor";
  (* Routed through the process-wide synthesis cache: when a scenario
     experiment ran earlier in the same invocation this is a hit. *)
  let sup, stats = Spectr.Supervisor.synthesize () in
  describe "supervisor" sup;
  Format.printf "  synthesis: %a@." Synthesis.pp_stats stats;
  (* The two §4.3.4 property checks are independent; run them on the
     pool and print in order. *)
  (match
     Spectr_exec.Parmap.map
       (fun check -> check ())
       [
         (fun () -> Verify.is_nonblocking sup);
         (fun () -> Verify.is_controllable ~plant ~supervisor:sup);
       ]
   with
  | [ nonblocking; controllable ] ->
      Printf.printf "  non-blocking check: %b\n" nonblocking;
      Printf.printf "  controllability check: %b\n" controllable
  | _ -> assert false);
  Printf.printf "  ideal state: %s (initial, marked)\n" (Automaton.initial sup);
  (* Spot-check the two supervision mechanisms of Fig. 12d. *)
  (match
     Automaton.trace sup [ Spectr.Events.qos_not_met; Spectr.Events.critical ]
   with
  | Some st ->
      let en =
        Automaton.enabled sup st |> List.map Event.name |> String.concat ", "
      in
      Printf.printf "  after critical!: state %s, enabled: %s\n" st en
  | None -> ());
  print_endline
    "\nShape check (paper): synthesis prunes the forbidden Threshold\n\
     region; the supervisor is verified non-blocking and controllable,\n\
     with gain scheduling reachable from the critical event."
