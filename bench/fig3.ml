(* Figure 3: x264 on a quad-core cluster controlled by fixed-priority 2x2
   MIMOs.  The FPS-oriented controller holds 60 FPS and lets power float;
   the power-oriented controller holds the power reference and lets FPS
   float — neither can renegotiate when goals change, which motivates the
   supervisor.  The two controller runs are independent and fan out
   across the pool. *)

open Spectr_platform
open Spectr_control

let run_controller ~label ~q_y =
  let ident = Spectr.Design_flow.identify Spectr.Design_flow.Big_2x2 in
  let gains =
    match
      Spectr.Design_flow.design_gains ident [ { Spectr.Design_flow.label; q_y } ]
    with
    | Ok g -> g
    | Error m -> failwith m
  in
  let ctrl =
    Spectr.Design_flow.build_mimo ident ~gains ~initial:label
      ~refs:[| 60.; 5.0 |]
  in
  let soc = Soc.create ~qos:Benchmarks.x264 () in
  let steps = 200 in
  let time = Array.make steps 0. in
  let fps = Array.make steps 0. in
  let power = Array.make steps 0. in
  let big = Soc.host_cluster soc in
  for t = 0 to steps - 1 do
    let obs = Soc.step soc ~dt:0.05 in
    let big_power = (Soc.sensor_powers soc).(big) in
    time.(t) <- obs.Soc.time;
    fps.(t) <- obs.Soc.qos_rate;
    power.(t) <- big_power;
    let u = Mimo.step ctrl ~measured:[| obs.Soc.qos_rate; big_power |] in
    let (_ : Spectr.Manager.applied) =
      Spectr.Manager.apply_cluster soc big ~freq_ghz:u.(0) ~cores:u.(1)
    in
    ()
  done;
  (time, fps, power)

let summarize name fps power =
  let tail a = Array.sub a 100 100 in
  Printf.printf
    "  %-22s steady FPS %6.1f (ref 60.0)   steady power %5.2f W (ref 5.0)\n"
    name
    (Spectr_linalg.Stats.mean (tail fps))
    (Spectr_linalg.Stats.mean (tail power))

let run () =
  Util.heading
    "Figure 3: fixed-priority 2x2 MIMOs on x264 (quad-core A15, refs 60 FPS / 5 W)";
  let results =
    Spectr_exec.Parmap.map
      (fun (label, q_y) -> run_controller ~label ~q_y)
      [ ("qos", Spectr.Mm.qos_weights); ("power", Spectr.Mm.power_weights) ]
  in
  match results with
  | [ (t_a, fps_a, pow_a); (_, fps_b, pow_b) ] ->
      Util.subheading "(a) FPS-oriented controller (Q ratio 30:1)";
      Util.print_series ~columns:[ "fps"; "power_W" ] ~time:t_a [ fps_a; pow_a ];
      Util.subheading "(b) power-oriented controller (Q ratio 1:30)";
      Util.print_series ~columns:[ "fps"; "power_W" ] ~time:t_a [ fps_b; pow_b ];
      Util.subheading "summary (paper: each controller tracks only its priority)";
      summarize "FPS-oriented" fps_a pow_a;
      summarize "power-oriented" fps_b pow_b
  | _ -> assert false
