(* Figure 5: accuracy of identified system models — predicted (free
   simulation) vs measured power output, for the per-cluster 2x2 system
   and the per-core 10x10 system.  The 2x2 model tracks the measurement;
   the 10x10 model visibly deviates.  The two identifications run in
   parallel; printing follows in figure order. *)

open Spectr_sysid

let series subsystem ~output_index ~output_name =
  let ident = Spectr.Design_flow.identify subsystem in
  let report = ident.Spectr.Design_flow.report in
  let data = ident.Spectr.Design_flow.dataset in
  (* validation split as in Design_flow.identify *)
  let _, held_out = Dataset.split data ~at:0.65 in
  let simulated = report.Validation.simulated in
  ignore simulated;
  (* re-simulate on the held-out slice for plotting *)
  let report_holdout =
    Validation.validate ~model:ident.Spectr.Design_flow.model held_out
  in
  let n = min 100 (Dataset.length held_out) in
  let measured =
    Array.init n (fun t -> held_out.Dataset.y.(t).(output_index))
  in
  let predicted =
    Array.init n (fun t ->
        report_holdout.Validation.simulated.(t).(output_index))
  in
  let fit =
    report_holdout.Validation.channels.(output_index).Validation.fit_percent
  in
  (measured, predicted, fit, output_name)

let print_block title (measured, predicted, fit, name) =
  Util.subheading
    (Printf.sprintf "%s — %s output, free-simulation fit %.1f%%" title name fit);
  let time = Array.init (Array.length measured) (fun t -> float_of_int t) in
  Util.print_series ~columns:[ "measured"; "predicted" ] ~time
    [ measured; predicted ]

let run () =
  Util.heading
    "Figure 5: identified-model accuracy, 2x2 vs 10x10 (normalized power)";
  let blocks =
    Spectr_exec.Parmap.map
      (fun (title, subsystem, output_index, output_name) ->
        (title, series subsystem ~output_index ~output_name))
      [
        ("2x2 per-cluster model", Spectr.Design_flow.Big_2x2, 1, "big power");
        ("10x10 per-core model", Spectr.Design_flow.Large_10x10, 8, "big power");
      ]
  in
  List.iter (fun (title, block) -> print_block title block) blocks;
  print_endline
    "\nShape check (paper): the small model's prediction follows the\n\
     measurement; the large model deviates significantly."
