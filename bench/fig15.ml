(* Figure 15: autocorrelation of one-step residuals for identified models
   of increasing size (2x2 per-cluster, 4x2 full-system, 10x10 per-core)
   against 99% whiteness confidence bands, for a throughput (IPS) output
   and a power output.  The three identifications are independent and run
   in parallel; the per-channel printing follows in figure order. *)

open Spectr_sysid

let print_channel ~title (c : Validation.channel_report) =
  Util.subheading
    (Printf.sprintf "%s — 99%% confidence ±%.3f, violations %d, max excursion %+.3f"
       title c.Validation.confidence99 c.Validation.violations
       c.Validation.max_excursion);
  Printf.printf "%6s %10s %s\n" "lag" "autocorr" "";
  Array.iter
    (fun (lag, v) ->
      if lag >= 0 && lag mod 2 = 0 then begin
        let marker = if abs_float v > c.Validation.confidence99 then "  <-- outside band" else "" in
        let width = int_of_float (abs_float v *. 40.) in
        Printf.printf "%6d %+10.3f %s%s\n" lag v
          (String.make (min width 40) '#')
          marker
      end)
    c.Validation.residual_autocorr

let subsystems =
  [ Spectr.Design_flow.Big_2x2; Spectr.Design_flow.Fs_4x2; Spectr.Design_flow.Large_10x10 ]

let run () =
  Util.heading
    "Figure 15: residual autocorrelation vs model size (whiteness check)";
  let cases =
    [
      (Spectr.Design_flow.Big_2x2, 0, "2x2 big-cluster model, QoS/IPS output");
      (Spectr.Design_flow.Big_2x2, 1, "2x2 big-cluster model, power output");
      (Spectr.Design_flow.Fs_4x2, 0, "4x2 full-system model, QoS/IPS output");
      (Spectr.Design_flow.Fs_4x2, 1, "4x2 full-system model, power output");
      (Spectr.Design_flow.Large_10x10, 0, "10x10 model, core0 IPS output");
      (Spectr.Design_flow.Large_10x10, 8, "10x10 model, big power output");
    ]
  in
  let idents =
    Spectr_exec.Parmap.map
      (fun sub -> (sub, Spectr.Design_flow.identify sub))
      subsystems
  in
  let get sub = List.assoc sub idents in
  List.iter
    (fun (sub, idx, title) ->
      let ident = get sub in
      print_channel ~title
        ident.Spectr.Design_flow.report.Validation.channels.(idx))
    cases;
  Util.subheading "violations per channel, averaged over all outputs";
  List.iter
    (fun sub ->
      let ident = get sub in
      let chans = ident.Spectr.Design_flow.report.Validation.channels in
      let avg =
        Array.fold_left
          (fun acc c -> acc +. float_of_int c.Validation.violations)
          0. chans
        /. float_of_int (Array.length chans)
      in
      Printf.printf "  %-12s %.1f violations of the 99%% band per channel\n"
        (Spectr.Design_flow.subsystem_name sub)
        avg)
    subsystems;
  print_endline
    "\nShape check (paper): the 2x2 model stays inside the confidence\n\
     band; larger models show progressively more band violations and\n\
     sharper peaks."
