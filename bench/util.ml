(* Shared helpers for the benchmark harness.

   Parallel-execution discipline: every experiment computes first —
   fanning its scenario grid out with [Spectr_exec.Parmap.map], whose
   results come back in submission order — and prints second, from the
   main domain only.  Tasks construct their managers from scratch (a
   manager is stateful; sharing one across scenarios would make results
   depend on execution order) and never touch shared mutable state, so
   tables and traces are byte-identical for any SPECTR_JOBS value. *)

let heading title =
  Printf.printf "\n=============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "=============================================================\n"

let subheading title = Printf.printf "\n--- %s\n" title

(* Print a time series subsampled to at most [points] rows plus the final
   one: the stride loop alone would leave the steady-state value shown in
   figures up to stride-1 steps stale. *)
let print_series ~columns ~time rows =
  let n = Array.length time in
  let points = 30 in
  let stride = max 1 (n / points) in
  Printf.printf "%8s" "time";
  List.iter (fun c -> Printf.printf " %10s" c) columns;
  print_newline ();
  let emit i =
    Printf.printf "%8.2f" time.(i);
    List.iter (fun v -> Printf.printf " %10.3f" v.(i)) rows;
    print_newline ()
  in
  let i = ref 0 in
  while !i < n do
    emit !i;
    i := !i + stride
  done;
  (* The loop's last emitted index was !i - stride. *)
  if n > 0 && !i - stride <> n - 1 then emit (n - 1)

(* The four resource managers of the evaluation, as constructors: each
   parallel task builds its own fresh instance.  (The pre-parallel
   harness reused manager instances across scenario runs, leaking
   controller and supervisor state from one run into the next.) *)
let manager_specs () : (string * (unit -> Spectr.Manager.t)) list =
  [
    ("SPECTR", fun () -> fst (Spectr.Spectr_manager.make ()));
    ("MM-Pow", fun () -> Spectr.Mm.make_pow ());
    ("MM-Perf", fun () -> Spectr.Mm.make_perf ());
    ("FS", fun () -> Spectr.Fs.make ());
  ]

(* The evaluation-grid columns: every (manager, platform) pair a cell
   runs.  The four exynos columns above, plus SPECTR driving the
   3-cluster pixel8pro description — each new platform is a new column
   axis, not a new harness. *)
let grid_specs () :
    (string * Spectr_platform.Platform_desc.t * (unit -> Spectr.Manager.t))
    list =
  let exynos = Spectr_platform.Platform_desc.exynos5422 in
  let p8p = Spectr_platform.Platform_desc.pixel8pro in
  List.map (fun (name, mk) -> (name, exynos, mk)) (manager_specs ())
  @ [
      ( "SPECTR-3c",
        p8p,
        fun () -> fst (Spectr.Spectr_manager.make ~platform:p8p ()) );
    ]

(* Run one scenario per (label, constructor) pair, fanned out across the
   pool; results are in input order. *)
let run_scenarios ~config specs =
  Spectr_exec.Parmap.map
    (fun (name, make_manager) ->
      (name, Spectr.Scenario.run ~manager:(make_manager ()) config))
    specs
