(* Figure 13: measured FPS and power of all four resource managers over
   the three-phase x264 scenario, plus the §5.1.1 responsiveness
   comparison (power compliance time after the emergency drop).

   The four scenario runs are independent (each task constructs its own
   manager and SoC), so they fan out across the pool; printing happens
   afterwards, in manager order. *)

open Spectr_platform

let run () =
  Util.heading
    "Figure 13: FPS and power traces, x264, three phases (safe 0-5 s / \
     emergency 5-10 s / disturbance 10-15 s)";
  let cfg = Spectr.Scenario.default_config Benchmarks.x264 in
  let traces = Util.run_scenarios ~config:cfg (Util.manager_specs ()) in
  let compliance =
    List.map
      (fun (name, trace) ->
        Util.subheading (name ^ ": measured FPS / chip power vs references");
        Util.print_series
          ~columns:[ "fps"; "fps_ref"; "power_W"; "power_ref" ]
          ~time:(Trace.column trace "time")
          [
            Trace.column trace "qos";
            Trace.column trace "qos_ref";
            Trace.column trace "power";
            Trace.column trace "envelope";
          ];
        let metrics = Spectr.Metrics.per_phase ~trace ~config:cfg in
        List.iter
          (fun m -> Format.printf "  %a@." Spectr.Metrics.pp_phase_metrics m)
          metrics;
        let emergency =
          List.find
            (fun m -> m.Spectr.Metrics.phase_name = "emergency")
            metrics
        in
        (name, emergency.Spectr.Metrics.compliance_time_s))
      traces
  in
  Util.subheading
    "responsiveness: time to power-envelope compliance after the emergency \
     drop (paper: FS 2.07 s vs SPECTR 1.28 s)";
  List.iter
    (fun (name, t) ->
      Printf.printf "  %-8s %s\n" name
        (match t with Some s -> Printf.sprintf "%.2f s" s | None -> "never"))
    compliance
