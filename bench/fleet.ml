(* Fleet-scale hierarchical supervision (ROADMAP item 1).

   One level above the paper's per-chip hierarchy: a datacenter
   coordinator re-budgets per-node power caps under a global cap each
   epoch, while every node's own synthesized SCT supervisor stays the
   enforcement mechanism.  The table compares three policies on the same
   deterministic fleet:

   - uncoordinated: every node at its chip TDP — the per-node-only
     baseline that violates the global cap;
   - static: an even global_cap/n split — compliant but need-blind;
   - waterfill: demand-driven water-filling over epoch reports —
     compliant and need-aware.

   In --smoke mode the compliance and determinism properties are
   enforced hard (a breach exits nonzero): the water-filling fleet must
   hold the global cap where the uncoordinated baseline breaks it, and
   a forced 4-job pool must reproduce the 1-job digest bit-for-bit.
   `make fleet-smoke` additionally diffs whole-process stdout across
   SPECTR_JOBS values.  Wall-clock goes to stderr: stdout carries only
   deterministic fields. *)

module F = Spectr_fleet.Fleet
module Coordinator = Spectr_fleet.Coordinator
module Pool = Spectr_exec.Pool

let smoke = ref false

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let spec ~nodes ~epochs ~ticks ~policy =
  {
    F.nodes;
    epochs;
    ticks_per_epoch = ticks;
    dt = 0.05;
    seed = 42;
    (* 1.5 W per node: 30 % of the 5 W chip TDP — tight enough that an
       uncoordinated fleet running near TDP breaks it. *)
    global_cap = 1.5 *. float_of_int nodes;
    policy;
    node_config = Spectr_fleet.Node.default_config;
    arrival_rate = float_of_int nodes /. 16.;
    kill_rate = float_of_int nodes /. 512.;
    down_epochs = 2;
    shard_size = 64;
    platforms = [| Spectr_platform.Platform_desc.exynos5422 |];
  }

let policies =
  [
    Coordinator.Uncoordinated; Coordinator.Static_split;
    Coordinator.Water_filling;
  ]

let print_row name cap (r : F.result) =
  Printf.printf "  %-14s %8.1f %8.1f %8.1f %6d/%-6d %7.4f %10.1f  %s\n" name
    cap r.F.peak_fleet_power r.F.mean_fleet_power r.F.violation_ticks
    r.F.total_ticks r.F.qos_attainment r.F.total_debt r.F.digest

let comparison_section ~nodes ~epochs ~ticks =
  Util.subheading
    (Printf.sprintf "policy comparison: %d nodes, %d epochs x %d ticks" nodes
       epochs ticks);
  Printf.printf "  %-14s %8s %8s %8s %13s %7s %10s  %s\n" "policy" "cap W"
    "peak W" "mean W" "violations" "qos" "debt s" "digest";
  let results =
    List.map
      (fun p ->
        let s = spec ~nodes ~epochs ~ticks ~policy:p in
        let r = F.run s in
        print_row (Coordinator.string_of_policy p) s.F.global_cap r;
        (p, r))
      policies
  in
  let get p = List.assoc p results in
  let unco = get Coordinator.Uncoordinated in
  let water = get Coordinator.Water_filling in
  if !smoke then begin
    if unco.F.violation_ticks = 0 then
      failwith
        "fleet: the uncoordinated baseline never violated the global cap — \
         the comparison is vacuous";
    if water.F.violation_ticks > 0 then
      failwith
        (Printf.sprintf
           "fleet: water-filling violated the global cap on %d ticks"
           water.F.violation_ticks);
    Printf.printf "  compliance gate: PASS (baseline %d violations, \
                   waterfill 0)\n"
      unco.F.violation_ticks
  end

let determinism_section ~nodes ~epochs ~ticks =
  Util.subheading "determinism: forced 1-job vs 4-job pools, same process";
  let s = spec ~nodes ~epochs ~ticks ~policy:Coordinator.Water_filling in
  let digest_with jobs =
    let pool = Pool.create ~jobs () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> (F.run ~pool s).F.digest)
  in
  let d1 = digest_with 1 in
  let d4 = digest_with 4 in
  Printf.printf "  jobs=1  %s\n  jobs=4  %s\n" d1 d4;
  if d1 <> d4 then
    failwith "fleet: digest differs between 1-job and 4-job pools";
  Printf.printf "  determinism gate: PASS\n"

let scale_section () =
  (* The 10k x 10k headline: 10 000 nodes, 10 000 controller ticks each
     (100 epochs x 100 ticks), one hundred million node-ticks through
     the full SoC + manager + supervisor stack. *)
  let nodes, epochs, ticks = (10_000, 100, 100) in
  Util.subheading
    (Printf.sprintf "scale: %d nodes x %d ticks (%d epochs)" nodes
       (epochs * ticks) epochs);
  let s = spec ~nodes ~epochs ~ticks ~policy:Coordinator.Water_filling in
  let t0 = now_s () in
  let r = F.run s in
  let dt_s = now_s () -. t0 in
  Printf.printf "  %-14s %8s %8s %8s %13s %7s %10s  %s\n" "policy" "cap W"
    "peak W" "mean W" "violations" "qos" "debt s" "digest";
  print_row "waterfill" s.F.global_cap r;
  let node_ticks = float_of_int (nodes * r.F.total_ticks) in
  Printf.eprintf "fleet scale: %.0f node-ticks in %.1f s (%.0f kticks/s)\n%!"
    node_ticks dt_s
    (node_ticks /. dt_s /. 1e3)

let run () =
  Util.heading "fleet";
  let nodes, epochs, ticks = if !smoke then (32, 8, 25) else (256, 40, 50) in
  comparison_section ~nodes ~epochs ~ticks;
  determinism_section ~nodes ~epochs ~ticks;
  if not !smoke then scale_section ()
