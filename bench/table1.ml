(* Table 1: major on-chip resource-management approaches and the key
   questions they address.  Qualitative — reproduced verbatim so the
   harness covers every table of the paper. *)

let run () =
  Util.heading
    "Table 1: approaches vs key questions (* = partially addressed)";
  let rows =
    [
      ("A Machine learning", [ ""; ""; "+"; "+"; ""; "+" ]);
      ("B Model-based heuristics", [ ""; ""; "+"; "+"; ""; "" ]);
      ("C SISO control theory", [ "+"; "+"; "+"; ""; "*"; "" ]);
      ("D MIMO control theory", [ "+"; "+"; "+"; "+"; ""; "" ]);
      ("E Supervisory control [SPECTR]", [ "+"; "+"; "+"; "+"; "+"; "+" ]);
    ]
  in
  Printf.printf "%-32s %11s %9s %10s %12s %11s %8s\n" ""
    "1.Robust" "2.Formal" "3.Effic" "4.Coord" "5.Scal" "6.Auton";
  (* Format rows on the pool, print in order — the same compute-then-
     print split every driver follows (trivial here, but uniform). *)
  List.iter print_string
    (Spectr_exec.Parmap.map
       (fun (name, marks) ->
         let b = Buffer.create 80 in
         Buffer.add_string b (Printf.sprintf "%-32s" name);
         List.iter (fun m -> Buffer.add_string b (Printf.sprintf " %10s" m)) marks;
         Buffer.add_char b '\n';
         Buffer.contents b)
       rows);
  print_endline
    "\nRow E is what this library implements; rows C/D correspond to the\n\
     PID/SISO (Spectr_control.Pid) and LQG/MIMO (Spectr_control.Mimo)\n\
     building blocks it also provides."
