(* Ablation benches for the design choices DESIGN.md calls out:
   - gain scheduling on/off,
   - supervisor period (1x / 2x / 10x the controller period),
   - capping-band width.

   Every variant constructs its own manager inside a parallel task; each
   subheading group fans out with Parmap and prints in list order. *)

open Spectr_platform

let summarize name trace cfg =
  let metrics = Spectr.Metrics.per_phase ~trace ~config:cfg in
  Printf.printf "  %-28s" name;
  List.iter
    (fun m ->
      Printf.printf "  %s[q%+6.1f p%+6.1f]" m.Spectr.Metrics.phase_name
        m.Spectr.Metrics.qos_error_pct m.Spectr.Metrics.power_error_pct)
    metrics;
  print_newline ()

let run () =
  Util.heading "Ablations (x264 scenario; steady-state errors in %)";
  let cfg = Spectr.Scenario.default_config Benchmarks.x264 in
  let group specs =
    List.iter
      (fun (name, trace) -> summarize name trace cfg)
      (Util.run_scenarios ~config:cfg specs)
  in

  Util.subheading
    "Table 1 Row C baseline: uncoordinated SISO loops (vs SPECTR)";
  group
    [
      ("SPECTR", fun () -> fst (Spectr.Spectr_manager.make ()));
      ("SISO (3 independent PIDs)", fun () -> Spectr.Siso.make ());
    ];

  Util.subheading "gain scheduling (SPECTR with and without mode switches)";
  group
    [
      ( "with gain scheduling",
        fun () -> fst (Spectr.Spectr_manager.make ~gain_scheduling:true ()) );
      ( "without gain scheduling",
        fun () -> fst (Spectr.Spectr_manager.make ~gain_scheduling:false ()) );
    ];

  Util.subheading
    "supervisor period (divisor of the 50 ms controller period; paper uses 2)";
  group
    (List.map
       (fun divisor ->
         ( Printf.sprintf "supervisor every %d periods" divisor,
           fun () ->
             fst (Spectr.Spectr_manager.make ~supervisor_divisor:divisor ()) ))
       [ 1; 2; 10 ]);

  Util.subheading "three-band capping width (uncapping threshold)";
  let switch_counts =
    Spectr_exec.Parmap.map
      (fun uncap ->
        let config =
          { Spectr.Supervisor.default_config with uncapping_threshold = uncap }
        in
        let commands =
          {
            Spectr.Supervisor.switch_gains = (fun _ -> ());
            set_power_ref = (fun _ _ -> ());
          }
        in
        let sup = Spectr.Supervisor.create ~config ~commands ~envelope:5.0 () in
        (* count mode switches under a noisy power trajectory hovering near
           the cap: a wider band should switch less *)
        let g = Spectr_linalg.Prng.create 7L in
        let switches = ref 0 in
        let last = ref (Spectr.Supervisor.gains_mode sup) in
        for _ = 1 to 300 do
          let power = 4.6 +. Spectr_linalg.Prng.gaussian g ~mu:0. ~sigma:0.5 in
          Spectr.Supervisor.step sup ~qos:60. ~qos_ref:60. ~power ~envelope:5.0;
          let mode = Spectr.Supervisor.gains_mode sup in
          if mode <> !last then begin
            incr switches;
            last := mode
          end
        done;
        (uncap, !switches))
      [ 0.95; 0.90; 0.80 ]
  in
  List.iter
    (fun (uncap, switches) ->
      Printf.printf
        "  uncapping threshold %.2f -> %d gain switches over 30 s of \
         near-cap noise\n"
        uncap switches)
    switch_counts
