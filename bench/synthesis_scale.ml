(* Synthesis scalability: chain-compose k three-state cluster sub-plants,
   restrict by a shared power-budget specification, supcon-synthesize and
   verify — the full §4.3 design flow at growing scale (the many-cluster
   regime the §2 scalability argument is about).

   The plant family: cluster i is Idle -start_i-> Busy -done_i!-> Idle,
   with an uncontrollable Busy -overheat_i!-> Hot -cool_i-> Idle detour.
   All events are private to their cluster, so the composed plant has
   3^k states — the product grid reaches ~10^5 states at k = 10.

   The budget spec counts active (non-Idle) clusters and says: at most
   [cap] active at once, and an overheat while saturated is forbidden
   (uncontrollable escape into a ✗ state).  Synthesis therefore has real
   work to do: it must pre-emptively disable start events one step before
   saturation, exercising the forbidden, uncontrollable and blocking
   passes rather than just copying the product through.

   Timings go to a table on stdout in the normal mode.  In --smoke mode
   (CI) only the smallest grid row runs and no timings are printed, so
   the output is deterministic and shape-checkable. *)

open Spectr_automata

let smoke = ref false

let cluster i =
  let start = Event.controllable (Printf.sprintf "start%d" i) in
  let finish = Event.uncontrollable (Printf.sprintf "done%d" i) in
  let overheat = Event.uncontrollable (Printf.sprintf "overheat%d" i) in
  let cool = Event.controllable (Printf.sprintf "cool%d" i) in
  Automaton.create ~marked:[ "Idle" ]
    ~name:(Printf.sprintf "Cluster%d" i)
    ~initial:"Idle"
    ~transitions:
      [
        ("Idle", start, "Busy");
        ("Busy", finish, "Idle");
        ("Busy", overheat, "Hot");
        ("Hot", cool, "Idle");
      ]
    ()

(* Count of active clusters, capped.  start increments; done/cool
   decrement; overheat keeps the count (Busy -> Hot stays active) except
   at saturation, where it escapes uncontrollably into the forbidden
   state: the supervisor must never let the system saturate with a Busy
   cluster, i.e. it has to stop issuing start one step early. *)
let budget_spec ~k ~cap =
  let state j = Printf.sprintf "B%d" j in
  let transitions = ref [] in
  let add t = transitions := t :: !transitions in
  for i = 1 to k do
    let start = Event.controllable (Printf.sprintf "start%d" i) in
    let finish = Event.uncontrollable (Printf.sprintf "done%d" i) in
    let overheat = Event.uncontrollable (Printf.sprintf "overheat%d" i) in
    let cool = Event.controllable (Printf.sprintf "cool%d" i) in
    for j = 0 to cap - 1 do
      add (state j, start, state (j + 1));
      add (state j, overheat, state j)
    done;
    for j = 1 to cap do
      add (state j, finish, state (j - 1));
      add (state j, cool, state (j - 1))
    done;
    add (state cap, overheat, "Over")
  done;
  Automaton.create ~marked:[ state 0 ] ~forbidden:[ "Over" ]
    ~name:(Printf.sprintf "Budget%d" cap)
    ~initial:(state 0) ~transitions:!transitions ()

let timed f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let grid () = if !smoke then [ (4, 3) ] else [ (4, 3); (6, 5); (8, 7); (10, 9) ]

let run () =
  Util.heading
    "Synthesis scale: k chained cluster plants vs. a shared budget spec";
  Printf.printf "\n  %3s %4s %9s %9s %9s" "k" "cap" "plant-Q" "product-Q"
    "sup-Q";
  if not !smoke then
    Printf.printf " %9s %9s %9s %9s %9s" "compose-s" "supcon-s" "par1-s"
      "par4-s" "verify-s";
  print_newline ();
  List.iter
    (fun (k, cap) ->
      let plants = List.init k (fun i -> cluster (i + 1)) in
      let spec = budget_spec ~k ~cap in
      let plant, t_compose = timed (fun () -> Compose.all plants) in
      let result, t_supcon =
        timed (fun () -> Synthesis.supcon ~plant ~spec)
      in
      match result with
      | Error Synthesis.Empty_supervisor ->
          failwith "synthesis-scale: unexpectedly empty supervisor"
      | Ok (sup, stats) ->
          (* The sharded engine is pinned byte-identical to the
             sequential path: digest and stats equality gate every row,
             at 1 and 4 jobs. *)
          let par jobs =
            timed (fun () -> Synthesis.supcon_par ~jobs ~plant ~spec ())
          in
          let par1, t_par1 = par 1 in
          let par4, t_par4 = par 4 in
          (match (par1, par4) with
          | Ok (s1, st1), Ok (s4, st4) ->
              let dig = Automaton.structural_digest sup in
              if
                Automaton.structural_digest s1 <> dig
                || Automaton.structural_digest s4 <> dig
              then failwith "synthesis-scale: supcon_par digest diverged";
              if st1 <> stats || st4 <> stats then
                failwith "synthesis-scale: supcon_par stats diverged"
          | _ -> failwith "synthesis-scale: supcon_par unexpectedly empty");
          let checks, t_verify =
            timed (fun () ->
                ( Verify.is_nonblocking sup,
                  Verify.is_controllable ~plant ~supervisor:sup ))
          in
          let nonblocking, controllable = checks in
          if not (nonblocking && controllable) then
            failwith "synthesis-scale: verification failed";
          (* Synthesis must have pruned: saturating with a Busy cluster is
             uncontrollably fatal, so the supervisor is strictly smaller
             than the product. *)
          if Automaton.num_states sup >= stats.Synthesis.product_states then
            failwith "synthesis-scale: expected nontrivial pruning";
          Printf.printf "  %3d %4d %9d %9d %9d" k cap
            (Automaton.num_states plant)
            stats.Synthesis.product_states (Automaton.num_states sup);
          if not !smoke then
            Printf.printf " %9.3f %9.3f %9.3f %9.3f %9.3f" t_compose t_supcon
              t_par1 t_par4 t_verify;
          print_newline ())
    (grid ());
  (* Modular synthesis: the plant components and the spec composed
     jointly, on the fly — the regime where the composed plant (3^k
     states) can no longer be materialized.  Gated for determinism in
     both modes; rows and timings differ. *)
  Util.subheading
    "modular synthesis: plant components never composed up front";
  if !smoke then begin
    (* Pin modular against monolithic where the monolith is still cheap,
       then run one mid-size row under a wall-clock budget; output stays
       byte-deterministic (no timings printed). *)
    let plants = List.init 6 (fun i -> cluster (i + 1)) in
    let spec = budget_spec ~k:6 ~cap:5 in
    let mono = Synthesis.supcon ~plant:(Compose.all plants) ~spec in
    List.iter
      (fun jobs ->
        match (mono, Synthesis.supcon_modular ~jobs ~plants ~spec ()) with
        | Ok (sa, ta), Ok (sb, tb) ->
            if not (Automaton.isomorphic sa sb) then
              failwith "synthesis-scale: modular diverged from monolithic";
            if ta <> tb then
              failwith "synthesis-scale: modular stats diverged"
        | _ -> failwith "synthesis-scale: modular unexpectedly empty")
      [ 1; 4 ];
    Printf.printf
      "  modular k=6 cap=5: isomorphic to monolithic at jobs=1 and 4\n";
    let k = 10 and cap = 6 in
    let plants = List.init k (fun i -> cluster (i + 1)) in
    let spec = budget_spec ~k ~cap in
    let run jobs = Synthesis.supcon_modular ~jobs ~plants ~spec () in
    let r1, t1 = timed (fun () -> run 1) in
    let r4, t4 = timed (fun () -> run 4) in
    (match (r1, r4) with
    | Ok (s1, st1), Ok (s4, st4) ->
        if Automaton.structural_digest s1 <> Automaton.structural_digest s4
        then failwith "synthesis-scale: modular digest depends on jobs";
        if st1 <> st4 then
          failwith "synthesis-scale: modular stats depend on jobs";
        if not (Verify.is_nonblocking s1) then
          failwith "synthesis-scale: modular supervisor blocks";
        if t1 +. t4 > 60. then
          failwith "synthesis-scale: mid-size modular row over time budget";
        Printf.printf "  modular k=%d cap=%d: product %d, supervisor %d\n" k
          cap st1.Synthesis.product_states (Automaton.num_states s1)
    | _ -> failwith "synthesis-scale: mid-size modular row empty")
  end
  else begin
    Printf.printf "  %3s %4s %9s %9s %9s %9s\n" "k" "cap" "product-Q" "sup-Q"
      "par1-s" "par4-s";
    List.iter
      (fun (k, cap) ->
        let plants = List.init k (fun i -> cluster (i + 1)) in
        let spec = budget_spec ~k ~cap in
        let run jobs = Synthesis.supcon_modular ~jobs ~plants ~spec () in
        let r1, t1 = timed (fun () -> run 1) in
        let r4, t4 = timed (fun () -> run 4) in
        match (r1, r4) with
        | Ok (s1, st1), Ok (s4, st4) ->
            if
              Automaton.structural_digest s1 <> Automaton.structural_digest s4
            then failwith "synthesis-scale: modular digest depends on jobs";
            if st1 <> st4 then
              failwith "synthesis-scale: modular stats depend on jobs";
            if not (Verify.is_nonblocking s1) then
              failwith "synthesis-scale: modular supervisor blocks";
            Printf.printf "  %3d %4d %9d %9d %9.3f %9.3f\n" k cap
              st1.Synthesis.product_states (Automaton.num_states s1) t1 t4
        | _ -> failwith "synthesis-scale: modular unexpectedly empty")
      [ (12, 9); (14, 7); (16, 6) ]
  end;
  (* The process-wide synthesis cache: a second synthesis of the smallest
     grid cell must be a hit (same structural digests), costing only the
     digest.  Deltas, not totals — other experiments in the same
     invocation share the cache. *)
  let plant = Compose.all (List.init 4 (fun i -> cluster (i + 1))) in
  let spec = budget_spec ~k:4 ~cap:3 in
  let hits0, misses0 = Spectr_exec.Synth_cache.stats () in
  (match Spectr_exec.Synth_cache.supcon ~plant ~spec with
  | Ok _ -> ()
  | Error _ -> failwith "synthesis-scale: cache path returned empty");
  (match Spectr_exec.Synth_cache.supcon ~plant ~spec with
  | Ok _ -> ()
  | Error _ -> failwith "synthesis-scale: cache path returned empty");
  let hits1, misses1 = Spectr_exec.Synth_cache.stats () in
  Printf.printf
    "  synth-cache: +%d miss, +%d hit on re-synthesis of the k=4 cell\n"
    (misses1 - misses0) (hits1 - hits0);
  (* The description-driven supervisor at growing cluster counts: the
     real SPECTR plant/spec generated from synthetic k-cluster platform
     descriptions, synthesized and verified end to end.  Timed rows are
     non-deterministic, so this section is skipped in --smoke (which
     pins stdout byte-for-byte). *)
  if not !smoke then begin
    Util.subheading
      "description-driven supervisors on generated k-cluster platforms";
    Printf.printf "  %8s %9s %9s %9s %9s\n" "clusters" "product-Q" "sup-Q"
      "events" "total-s";
    List.iter
      (fun n ->
        let platform = Spectr_platform.Platform_desc.k_cluster n in
        let (sup, stats), t =
          timed (fun () -> Spectr.Supervisor.synthesize ~platform ())
        in
        let plant = Spectr.Plant_model.composed_for platform in
        if
          not
            (Verify.is_nonblocking sup
            && Verify.is_controllable ~plant ~supervisor:sup)
        then failwith "synthesis-scale: platform supervisor failed verify";
        Printf.printf "  %8d %9d %9d %9d %9.3f\n" n
          stats.Synthesis.product_states (Automaton.num_states sup)
          (Event.Set.cardinal (Automaton.alphabet sup))
          t)
      [ 2; 3; 4; 6; 8; 12; 16 ]
  end
