(* §5.3 Overhead evaluation: execution time of one low-level MIMO
   controller invocation and of one supervisor invocation, measured with
   Bechamel.  The paper reports 2.5 ms per MIMO invocation (5 % of its
   50 ms period, dominated by sensor syscalls on the board) and 30 µs for
   the supervisor; what matters here is the shape: the supervisor is
   orders of magnitude cheaper than the controllers it coordinates, and
   both are negligible against the 50 ms period. *)

open Bechamel
open Toolkit
open Spectr_platform

let make_tests () =
  (* The two system identifications feeding the benchmarked controllers
     are independent; run them on the pool.  The Bechamel timing runs
     themselves stay strictly sequential — concurrent domains would
     perturb the very latencies being measured. *)
  let ident_big, ident_fs =
    match
      Spectr_exec.Parmap.map Spectr.Design_flow.identify
        [ Spectr.Design_flow.Big_2x2; Spectr.Design_flow.Fs_4x2 ]
    with
    | [ big; fs ] -> (big, fs)
    | _ -> assert false
  in
  let goals =
    [
      { Spectr.Design_flow.label = "qos"; q_y = Spectr.Mm.qos_weights };
      { Spectr.Design_flow.label = "power"; q_y = Spectr.Mm.power_weights };
    ]
  in
  let gains =
    match Spectr.Design_flow.design_gains ident_big goals with
    | Ok g -> g
    | Error m -> failwith m
  in
  let mimo_2x2 =
    Spectr.Design_flow.build_mimo ident_big ~gains ~initial:"qos"
      ~refs:[| 60.; 4.5 |]
  in
  let fs_gains =
    match
      Spectr.Design_flow.design_gains ident_fs
        [ { Spectr.Design_flow.label = "power"; q_y = [| 0.1; 30. |] } ]
    with
    | Ok g -> g
    | Error m -> failwith m
  in
  let mimo_4x2 =
    Spectr.Design_flow.build_mimo ident_fs ~gains:fs_gains ~initial:"power"
      ~refs:[| 60.; 5.0 |]
  in
  let commands =
    {
      Spectr.Supervisor.switch_gains = (fun _ -> ());
      set_power_ref = (fun _ _ -> ());
    }
  in
  let sup = Spectr.Supervisor.create ~commands ~envelope:5.0 () in
  let soc = Soc.create ~qos:Benchmarks.x264 () in
  let measured_2 = [| 60.; 3.0 |] in
  let measured_fs = [| 60.; 4.0 |] in
  Test.make_grouped ~name:"overhead"
    [
      Test.make ~name:"mimo-2x2-step"
        (Staged.stage (fun () ->
             ignore (Spectr_control.Mimo.step mimo_2x2 ~measured:measured_2)));
      Test.make ~name:"mimo-4x2-step"
        (Staged.stage (fun () ->
             ignore (Spectr_control.Mimo.step mimo_4x2 ~measured:measured_fs)));
      Test.make ~name:"supervisor-step"
        (Staged.stage (fun () ->
             Spectr.Supervisor.step sup ~qos:59. ~qos_ref:60. ~power:3.1
               ~envelope:5.0));
      Test.make ~name:"soc-step (simulator)"
        (Staged.stage (fun () -> ignore (Soc.step soc ~dt:0.05)));
    ]

let run () =
  Util.heading
    "Section 5.3: controller and supervisor overhead (Bechamel, ns/run)";
  let tests = make_tests () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      Printf.printf "  %-28s %12.1f ns/run  (%.6f %% of the 50 ms period)\n"
        name ns
        (ns /. 50_000_000. *. 100.))
    (List.sort compare rows);
  print_endline
    "\nShape check (paper): every invocation is negligible against the\n\
     50 ms controller period (paper: 5 % per MIMO invocation including\n\
     sensor syscalls, 30 us for the supervisor; our pure-compute costs\n\
     are microseconds or less because the simulator pays no syscalls).\n\
     The 4x2 controller is measurably more expensive per step than the\n\
     2x2 — the scaling trend behind Figure 6.";
  (* With --obs, every Supervisor.step above also fed the observability
     layer: report the per-invocation latency distribution the paper's
     supervisory-invocation-cost table shows (absent without --obs so
     the default stdout stays byte-identical). *)
  if Spectr_obs.enabled () then begin
    let h = Spectr_obs.Histogram.histogram "supervisor.step_ns" in
    let p q = Spectr_obs.Histogram.percentile h q in
    Printf.printf
      "\n\
      \  supervisory invocation latency (obs, %d invocations):\n\
      \    p50 %d ns   p95 %d ns   p99 %d ns   max %d ns   mean %.1f ns\n"
      (Spectr_obs.Histogram.count h)
      (p 50.) (p 95.) (p 99.)
      (Spectr_obs.Histogram.max_ns h)
      (Spectr_obs.Histogram.mean_ns h);
    Printf.printf "  supervisory counter totals:\n";
    List.iter
      (fun (name, v) ->
        if String.length name >= 11 && String.sub name 0 11 = "supervisor." then
          Printf.printf "    %-36s %d\n" name v)
      (Spectr_obs.Counters.snapshot ())
  end
