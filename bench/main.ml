(* SPECTR benchmark harness: regenerates every table and figure of the
   paper's evaluation.

     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe -- fig13   # just one (table1, fig3, fig5,
                                         # fig6, fig12, fig13, fig14,
                                         # fig15, overhead, ablations)

   See EXPERIMENTS.md for the paper-vs-measured record. *)

let experiments =
  [
    ("table1", Table1.run);
    ("fig3", Fig3.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("fig12", Fig12.run);
    ("fig13", Fig13.run);
    ("fig14", Fig14.run);
    ("fig15", Fig15.run);
    ("overhead", Overhead.run);
    ("ablations", Ablations.run);
    ("robustness", Robustness.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested
