(* SPECTR benchmark harness: regenerates every table and figure of the
   paper's evaluation.

     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe -- fig13   # just one (table1, fig3, fig5,
                                         # fig6, fig12, fig13, fig14,
                                         # fig15, overhead, ablations,
                                         # robustness)

   Scenario grids fan out across a domain pool (sized by SPECTR_JOBS or
   the machine's recommended domain count); results are reduced in
   submission order, so the output is byte-identical for any job count.
   See EXPERIMENTS.md for the paper-vs-measured record. *)

let experiments =
  [
    ("table1", Table1.run);
    ("fig3", Fig3.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("fig12", Fig12.run);
    ("fig13", Fig13.run);
    ("fig14", Fig14.run);
    ("fig15", Fig15.run);
    ("overhead", Overhead.run);
    ("ablations", Ablations.run);
    ("robustness", Robustness.run);
    ("reconfig", Reconfig.run);
    ("synthesis-scale", Synthesis_scale.run);
    ("throughput", Throughput.run);
    ("fleet", Fleet.run);
  ]

let usage () =
  Printf.eprintf
    "usage: main.exe [--smoke] [--obs] [experiment ...]\navailable: %s\n"
    (String.concat ", " (List.map fst experiments))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, names =
    List.partition (fun a -> a = "--smoke" || a = "--obs") args
  in
  if List.mem "--smoke" flags then begin
    Synthesis_scale.smoke := true;
    Throughput.smoke := true;
    Fleet.smoke := true;
    Reconfig.smoke := true
  end;
  let obs = List.mem "--obs" flags in
  (* Real monotonic clock for latency histograms; with --obs off the
     layer stays disabled and stdout is byte-identical (pinned by the
     CI parallel-vs-sequential diff and by test_obs). *)
  if obs then Spectr_obs.enable ~now_ns:Monotonic_clock.now ();
  let requested =
    match names with [] -> List.map fst experiments | names -> names
  in
  (* Validate every requested name before running anything: an unknown
     name must not abort the run halfway through earlier experiments. *)
  let unknown =
    List.filter (fun n -> not (List.mem_assoc n experiments)) requested
  in
  if unknown <> [] then begin
    List.iter (fun n -> Printf.eprintf "unknown experiment %S\n" n) unknown;
    usage ();
    exit 1
  end;
  (* The job count goes to stderr: stdout must stay byte-identical
     across SPECTR_JOBS settings (pinned by the determinism test). *)
  let jobs = Spectr_exec.Parmap.jobs () in
  Printf.eprintf "harness: %d parallel job%s (override with SPECTR_JOBS)\n%!"
    jobs
    (if jobs = 1 then "" else "s");
  List.iter (fun name -> (List.assoc name experiments) ()) requested;
  if obs then begin
    Util.heading "obs-summary";
    print_string (Spectr_obs.summary ())
  end
