(* Tick-kernel and batch throughput (ROADMAP item 2).

   Three layers, measured separately so a regression is attributable:

   - the zero-allocation kernels themselves (Soc.step_into,
     Supervisor.step): steady-state bytes allocated per call must be
     exactly zero, and the call cost is a few hundred nanoseconds;
   - the one-shot scenario loop (platform + manager + trace): ticks/s
     and bytes/tick on a single domain;
   - the batch arena: many scenario cells fanned out across the domain
     pool through one warm Spectr_chaos.Arena (managers built once per
     domain per variant, reset between cells), reported as aggregate
     ticks/s.

   In --smoke mode the timing columns are suppressed (CI must not gate
   on wall clock) and the deterministic properties are enforced hard:
   the kernel allocation budgets (0 B/call) and batch-vs-one-shot trace
   digest agreement for every variant.  A breach exits nonzero. *)

open Spectr_platform

let smoke = ref false

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let digest_of_trace tr = Digest.to_hex (Digest.string (Trace.to_csv tr))

(* Bytes allocated per iteration of [f], after [f] has already been run
   to steady state by the caller.  The Gc.allocated_bytes calls box a
   float each; amortized over the iteration count they contribute far
   below the 1 B/iter failure threshold. *)
let bytes_per_iter iters f =
  let b0 = Gc.allocated_bytes () in
  f iters;
  let b1 = Gc.allocated_bytes () in
  (b1 -. b0) /. float_of_int iters

let seconds_per_iter iters f =
  let t0 = now_s () in
  f iters;
  let t1 = now_s () in
  (t1 -. t0) /. float_of_int iters

let gate_alloc name per_iter =
  if per_iter >= 1.0 then
    failwith
      (Printf.sprintf
         "throughput: %s allocates %.2f B/call in steady state (budget: 0)"
         name per_iter);
  Printf.printf "  %-18s %5.2f B/call  (budget 0)  PASS\n" name per_iter

(* --- kernel microbenches ---------------------------------------------- *)

let kernel_section () =
  Util.subheading "tick kernel, steady state";
  let iters = if !smoke then 50_000 else 1_000_000 in
  (* SoC under load: background tasks keep every per-core loop busy. *)
  let soc = Soc.create ~qos:Benchmarks.x264 () in
  Soc.set_background_tasks soc 16;
  let obs = Soc.make_observation () in
  for _ = 1 to 1_000 do
    Soc.step_into soc ~dt:0.05 obs
  done;
  let soc_step n =
    for _ = 1 to n do
      Soc.step_into soc ~dt:0.05 obs
    done
  in
  gate_alloc "Soc.step_into" (bytes_per_iter iters soc_step);
  let commands =
    {
      Spectr.Supervisor.switch_gains = (fun _ -> ());
      set_power_ref = (fun _ _ -> ());
    }
  in
  let sup = Spectr.Supervisor.create ~commands ~envelope:2.0 () in
  for _ = 1 to 1_000 do
    Spectr.Supervisor.step sup ~qos:30.0 ~qos_ref:30.0 ~power:1.5 ~envelope:2.0
  done;
  let sup_step n =
    for _ = 1 to n do
      Spectr.Supervisor.step sup ~qos:30.0 ~qos_ref:30.0 ~power:1.5
        ~envelope:2.0
    done
  in
  gate_alloc "Supervisor.step" (bytes_per_iter iters sup_step);
  if not !smoke then begin
    Printf.printf "  %-18s %6.0f ns/call\n" "Soc.step_into"
      (seconds_per_iter iters soc_step *. 1e9);
    Printf.printf "  %-18s %6.0f ns/call\n" "Supervisor.step"
      (seconds_per_iter iters sup_step *. 1e9)
  end

(* --- scenario loop ----------------------------------------------------- *)

(* The default scenario is 300 ticks; for rate measurements stretch the
   phases so per-run start cost (SoC + trace construction) amortizes
   away and the number reflects the tick path. *)
let long_config seed =
  let cfg = Spectr.Scenario.default_config ~seed Benchmarks.x264 in
  {
    cfg with
    Spectr.Scenario.phases =
      List.map
        (fun p ->
          { p with Spectr.Scenario.duration_s = p.Spectr.Scenario.duration_s *. 10. })
        cfg.Spectr.Scenario.phases;
  }

let run_config config mgr =
  let r = Spectr.Scenario.start config in
  let rec go () =
    match Spectr.Scenario.tick r ~manager:mgr with
    | Some _ -> go ()
    | None -> ()
  in
  go ();
  Spectr.Scenario.trace r

let one_shot_section () =
  Util.subheading "scenario loop (SPECTR on x264, one domain)";
  let cfg = long_config 42L in
  let ticks = Spectr.Scenario.total_ticks cfg in
  let mgr, _sup = Spectr.Spectr_manager.make () in
  ignore (run_config cfg mgr : Trace.t);
  let reps = if !smoke then 1 else 20 in
  let b0 = Gc.allocated_bytes () in
  let t0 = now_s () in
  for _ = 1 to reps do
    ignore (run_config cfg mgr : Trace.t)
  done;
  let dt = now_s () -. t0 in
  let bytes = Gc.allocated_bytes () -. b0 in
  let total = float_of_int (reps * ticks) in
  if !smoke then Printf.printf "  %d ticks/run  (timings suppressed)\n" ticks
  else
    Printf.printf "  %8.0f ticks/s   %6.0f B/tick   %5.0f ns/tick\n"
      (total /. dt) (bytes /. total)
      (dt *. 1e9 /. total);
  total /. dt

(* --- batch arena -------------------------------------------------------- *)

let variants =
  Spectr_chaos.Campaign.
    [ Spectr; Mm_pow; Mm_perf; Siso; Fs ]

(* Digest agreement: a warm arena checkout must drive a scenario to the
   byte-identical trace a freshly built manager produces.  Checked per
   variant on the default (short) config. *)
let digest_section arena =
  Util.subheading "batch-vs-one-shot digest agreement";
  List.iter
    (fun v ->
      let cfg = Spectr.Scenario.default_config ~seed:42L Benchmarks.x264 in
      let fresh, _, _, _ = Spectr_chaos.Campaign.make_manager v in
      let d_fresh = digest_of_trace (run_config cfg fresh) in
      let warm, _, _, _ = Spectr_chaos.Arena.checkout arena v in
      (* Second checkout exercises the reset path, not first build. *)
      let warm, _, _, _ =
        ignore (run_config cfg warm : Trace.t);
        Spectr_chaos.Arena.checkout arena v
      in
      let d_warm = digest_of_trace (run_config cfg warm) in
      if d_fresh <> d_warm then
        failwith
          (Printf.sprintf
             "throughput: %s batch trace diverged from one-shot (%s vs %s)"
             (Spectr_chaos.Campaign.variant_name v)
             d_warm d_fresh);
      Printf.printf "  %-8s %s  PASS\n"
        (Spectr_chaos.Campaign.variant_name v)
        d_fresh)
    variants

(* The batch regime the engine exists for: many SHORT cells (default
   300-tick scenarios, the chaos-campaign / grid-bench shape), where
   before this refactor every cell rebuilt its managers and paid the
   full LQG/robustness gain-design pipeline.  The pre-refactor per-cell
   cost is measured live against the still-public uncached
   Design_flow.design_gains, so the reported speedup tracks this
   machine, not a hardcoded baseline. *)
let batch_section one_shot_rate =
  Util.subheading "batch arena (parallel cells, warm managers)";
  let arena = Spectr_chaos.Arena.create () in
  digest_section arena;
  if not !smoke then begin
    let jobs = Spectr_exec.Parmap.jobs () in
    let cfg = Spectr.Scenario.default_config ~seed:42L Benchmarks.x264 in
    let ticks = Spectr.Scenario.total_ticks cfg in
    let cells = 64 * jobs in
    let run_cell _i =
      let mgr, _, _, _ =
        Spectr_chaos.Arena.checkout arena Spectr_chaos.Campaign.Spectr
      in
      ignore (run_config cfg mgr : Trace.t)
    in
    (* Warm every domain's slot (and the shared design cache) before
       the timed sweep. *)
    Spectr_exec.Parmap.iter run_cell (List.init jobs (fun i -> i));
    let t0 = now_s () in
    Spectr_exec.Parmap.iter run_cell (List.init cells (fun i -> i));
    let dt = now_s () -. t0 in
    let warm_rate = float_of_int (cells * ticks) /. dt in
    Printf.printf
      "  warm arena:    %4d cells x %d ticks on %d job%s: %8.0f ticks/s \
       aggregate\n"
      cells ticks jobs
      (if jobs = 1 then "" else "s")
      warm_rate;
    (* Pre-refactor shape: fresh managers per cell, gain design
       uncached.  One emulated cell is enough — design dominates. *)
    let goals =
      [
        { Spectr.Design_flow.label = "qos"; q_y = Spectr.Mm.qos_weights };
        { Spectr.Design_flow.label = "power"; q_y = Spectr.Mm.power_weights };
      ]
    in
    let ident_big = Spectr.Design_flow.identify Spectr.Design_flow.Big_2x2 in
    let ident_little =
      Spectr.Design_flow.identify Spectr.Design_flow.Little_2x2
    in
    let t0 = now_s () in
    ignore (Spectr.Design_flow.design_gains ident_big goals);
    ignore (Spectr.Design_flow.design_gains ident_little goals);
    let mgr, _sup = Spectr.Spectr_manager.make () in
    ignore (run_config cfg mgr : Trace.t);
    let cold_dt = now_s () -. t0 in
    let cold_rate = float_of_int ticks /. cold_dt in
    Printf.printf
      "  pre-refactor:  fresh managers, uncached gain design: %.0f ms/cell \
       -> %8.0f ticks/s effective\n"
      (cold_dt *. 1e3) cold_rate;
    Printf.printf "  batch speedup: %.0fx  (one-shot long-run loop: %.1fx)\n"
      (warm_rate /. cold_rate)
      (warm_rate /. one_shot_rate);
    Printf.printf "  arena checkouts: %d\n"
      (Spectr_chaos.Arena.checkouts arena)
  end

let run () =
  Util.heading "Tick-kernel and batch throughput";
  kernel_section ();
  let rate = one_shot_section () in
  batch_section rate;
  Printf.printf "\nthroughput: all gates passed\n"
