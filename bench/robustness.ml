(* Robustness table: every fault class of Spectr_platform.Faults crossed
   with four managers — SPECTR with the graceful-degradation guards
   (SPECTR+G), unguarded SPECTR, the MM-Pow heuristic and the SISO PID
   baseline.

   Each cell runs a 12 s x264 scenario (safe 5 W / stress 3.5 W /
   recovery 5 W) with one fault injected around the stress phase, then
   reports

   - excess: time spent more than 5 % above the envelope after the fault
     hits (sustained violation, not the transient at a phase boundary),
   - recovery: time from fault clearance until chip power re-complies
     with the envelope for the rest of the run,
   - the verdict — RECOVERS, VIOLATES (sustained excess or no
     recovery) or DIVERGES (a non-finite value reached the trace).

   The bench passes when SPECTR+G recovers for every fault class while
   the unguarded SPECTR violates or diverges for at least one. *)

open Spectr_platform

let dt = 0.05
let stress_envelope = 3.5
let tdp = 5.0

(* Fault windows are attached to the first phase (which starts at t = 0),
   so phase-relative and absolute times coincide.  Sensor faults start
   after the emergency drop has been absorbed; actuator faults start in
   the safe phase so the actuators are stuck at high-power settings when
   the envelope drops at t = 3 s. *)
let classes =
  [
    ("no fault (control)", None, 3.5, 6.5);
    ("power dropout", Some (Faults.Dropout Power), 3.5, 6.5);
    ("qos stuck", Some (Faults.Stuck_at_last Qos), 3.5, 6.5);
    ("heartbeat stall", Some Faults.Heartbeat_stall, 3.5, 6.5);
    ("power spikes", Some (Faults.Spike_burst (Power, 5.)), 3.5, 6.5);
    ("dvfs stuck", Some Faults.Dvfs_stuck, 1.0, 6.5);
    ("gating refused", Some Faults.Gating_refused, 1.0, 6.5);
  ]

let config_for fault ~start_s ~stop_s =
  let phase name ~duration_s ~envelope ~background_tasks ~faults =
    {
      Spectr.Scenario.phase_name = name;
      duration_s;
      envelope;
      background_tasks;
      phase_faults = faults;
    }
  in
  let injections =
    match fault with
    | None -> []
    | Some f -> [ Faults.injection f ~start_s ~stop_s ]
  in
  {
    (Spectr.Scenario.default_config Benchmarks.x264) with
    Spectr.Scenario.phases =
      [
        phase "safe" ~duration_s:3. ~envelope:tdp ~background_tasks:0
          ~faults:injections;
        (* Background load makes the QoS reference unachievable inside
           the stress envelope: a manager that believes a lying sensor
           (power reads 0, QoS reads 0) will chase QoS straight through
           the cap, so only truthful sensing — or the guards' fallback —
           keeps it compliant. *)
        phase "stress" ~duration_s:4. ~envelope:stress_envelope
          ~background_tasks:16 ~faults:[];
        phase "recovery" ~duration_s:5. ~envelope:tdp ~background_tasks:0
          ~faults:[];
      ];
  }

type verdict = Recovers | Violates | Diverges

type cell = {
  verdict : verdict;
  excess_s : float;
  recovery_s : float option;
  watchdog : float list; (* guarded manager's own recovery times *)
}

let index_at time t =
  let n = Array.length time in
  let rec go i = if i >= n || time.(i) >= t then i else go (i + 1) in
  go 0

let evaluate ~trace ~onset ~clearance ~watchdog =
  let time = Trace.column trace "time" in
  (* Judge safety on ground truth: under a sensor fault the [power]
     column holds the corrupted reading the managers saw. *)
  let power =
    if List.mem "true_power" (Trace.columns trace) then
      Trace.column trace "true_power"
    else Trace.column trace "power"
  in
  let qos = Trace.column trace "qos" in
  let envelope = Trace.column trace "envelope" in
  let n = Array.length time in
  let finite = ref true in
  for i = 0 to n - 1 do
    if not (Float.is_finite power.(i) && Float.is_finite qos.(i)) then
      finite := false
  done;
  let onset_i = index_at time onset in
  let excess_s = ref 0. in
  for i = onset_i to n - 1 do
    if power.(i) > envelope.(i) *. 1.05 then excess_s := !excess_s +. dt
  done;
  (* Margin signal: compliant where power <= envelope + 2 %. *)
  let margin = Array.init n (fun i -> power.(i) -. (envelope.(i) *. 1.02)) in
  let after = index_at time clearance in
  let recovery_s =
    Spectr.Metrics.recovery_time ~envelope:0. ~dt ~after margin
  in
  let verdict =
    if not !finite then Diverges
    else if recovery_s = None || !excess_s > 1.0 then Violates
    else Recovers
  in
  { verdict; excess_s = !excess_s; recovery_s; watchdog }

(* Constructors, not instances: each grid cell builds its own manager
   (and guard state) inside its parallel task. *)
let manager_specs =
  [
    ( "SPECTR+G",
      fun () ->
        let guards = Spectr.Guarded.create () in
        (fst (Spectr.Spectr_manager.make ~guards ()), Some guards) );
    ("SPECTR", fun () -> (fst (Spectr.Spectr_manager.make ()), None));
    ("MM-Pow", fun () -> (Spectr.Mm.make_pow (), None));
    ("SISO", fun () -> (Spectr.Siso.make (), None));
  ]

let pp_cell c =
  let verdict =
    match c.verdict with
    | Recovers -> "RECOVERS"
    | Violates -> "VIOLATES"
    | Diverges -> "DIVERGES"
  in
  let recovery =
    match c.recovery_s with
    | Some s -> Printf.sprintf "rec %4.1fs" s
    | None -> "rec  never"
  in
  Printf.sprintf "%-8s %s exc %4.1fs" verdict recovery c.excess_s

let run () =
  Util.heading
    "Robustness: fault classes x managers, x264 (safe 5 W 0-3 s / stress \
     3.5 W 3-7 s / recovery 5 W 7-12 s)";
  (* One task per (fault class x manager) cell; the flat, submission-
     ordered results are regrouped by class for printing. *)
  let cell_inputs =
    List.concat_map
      (fun (class_name, fault, start_s, stop_s) ->
        List.map
          (fun spec -> (class_name, fault, start_s, stop_s, spec))
          manager_specs)
      classes
  in
  let cells_flat =
    Spectr_exec.Parmap.map
      (fun (_, fault, start_s, stop_s, (mgr_name, make)) ->
        let cfg = config_for fault ~start_s ~stop_s in
        let manager, guards = make () in
        let trace = Spectr.Scenario.run ~manager cfg in
        let watchdog =
          match guards with
          | None -> []
          | Some g -> Spectr.Guarded.recovery_times g
        in
        (mgr_name, evaluate ~trace ~onset:start_s ~clearance:stop_s ~watchdog))
      cell_inputs
  in
  let per_class = List.length manager_specs in
  let results =
    List.mapi
      (fun i (class_name, _, _, _) ->
        (class_name, List.filteri (fun j _ -> j / per_class = i) cells_flat))
      classes
  in
  List.iter
    (fun (class_name, cells) ->
      Util.subheading class_name;
      List.iter
        (fun (mgr_name, c) ->
          Printf.printf "  %-9s %s%s\n" mgr_name (pp_cell c)
            (match c.watchdog with
            | [] -> ""
            | ts ->
                Printf.sprintf "  (watchdog degraded %d time%s, longest %.1fs)"
                  (List.length ts)
                  (if List.length ts = 1 then "" else "s")
                  (List.fold_left Float.max 0. ts)))
        cells)
    results;
  let cell name cells = List.assoc name cells in
  let guarded_ok =
    List.for_all
      (fun (_, cells) -> (cell "SPECTR+G" cells).verdict = Recovers)
      results
  in
  let unguarded_fails =
    List.exists
      (fun (_, cells) -> (cell "SPECTR" cells).verdict <> Recovers)
      results
  in
  Util.subheading "verdict";
  Printf.printf "  SPECTR+G recovers in all %d fault classes: %b\n"
    (List.length results) guarded_ok;
  Printf.printf "  unguarded SPECTR violates/diverges in at least one: %b\n"
    unguarded_fails;
  Printf.printf "  %s\n"
    (if guarded_ok && unguarded_fails then "PASS" else "FAIL")
